package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pbspgemm"
	"pbspgemm/internal/mmio"
)

// intMatrix is an ER matrix with integer values: sums and products are
// exact in float64, so the k-split reduce of the sharded path lands on the
// same bytes as the single-node fold (see internal/shard).
func intMatrix(n int32, d int, seed uint64) *pbspgemm.CSR {
	m := pbspgemm.NewER(n, d, seed)
	for i := range m.Val {
		m.Val[i] = float64(i%5 + 1)
	}
	return m
}

// --- singleflight: leader cancellation must not poison followers ---

func TestFlightSurvivesLeaderCancellation(t *testing.T) {
	s := newTestServer(t, nil)
	a := intMatrix(32, 3, 1)
	b := intMatrix(32, 3, 2)
	ida := uploadText(t, s, a)
	idb := uploadText(t, s, b)
	sp, status, err := s.resolveSpec(multiplyRequest{A: ida, B: idb})
	if err != nil {
		t.Fatalf("resolveSpec: status %d err %v", status, err)
	}

	gate := make(chan struct{})
	started := make(chan struct{})
	var startedOnce atomic.Bool
	real := s.execute
	s.execute = func(ctx context.Context, spec *productSpec) (*Product, error) {
		if startedOnce.CompareAndSwap(false, true) {
			close(started)
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return real(ctx, spec)
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := s.product(leaderCtx, sp)
		leaderErr <- err
	}()
	<-started

	followerRes := make(chan error, 1)
	var followerProduct atomic.Pointer[Product]
	go func() {
		p, via, err := s.product(context.Background(), sp)
		if err == nil {
			if via != viaFlight {
				err = errors.New("follower was not coalesced")
			}
			followerProduct.Store(p)
		}
		followerRes <- err
	}()
	// Wait until the follower is attached, then kill the leader.
	deadline := time.Now().Add(5 * time.Second)
	for s.flights.waiting(sp.key()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never attached to the flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}

	// The flight must still be running — releasing the gate completes it and
	// the follower gets a real product, not the leader's cancellation.
	close(gate)
	select {
	case err := <-followerRes:
		if err != nil {
			t.Fatalf("follower error = %v, want product (leader cancellation leaked into the flight)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never completed")
	}
	if p := followerProduct.Load(); p == nil || p.C == nil {
		t.Fatal("follower got a nil product")
	}
}

func TestFlightCancelledWhenAllWaitersLeave(t *testing.T) {
	s := newTestServer(t, nil)
	a := intMatrix(32, 3, 3)
	b := intMatrix(32, 3, 4)
	sp, _, err := s.resolveSpec(multiplyRequest{A: uploadText(t, s, a), B: uploadText(t, s, b)})
	if err != nil {
		t.Fatalf("resolveSpec: %v", err)
	}
	started := make(chan struct{})
	flightDone := make(chan error, 1)
	s.execute = func(ctx context.Context, spec *productSpec) (*Product, error) {
		close(started)
		<-ctx.Done() // the last departing waiter must cancel us
		flightDone <- ctx.Err()
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, _, err := s.product(ctx, sp)
		res <- err
	}()
	<-started
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller error = %v, want context.Canceled", err)
	}
	select {
	case err := <-flightDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("flight ctx error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight kept running after its last waiter left")
	}
}

// --- admission retryAfter: seeded jitter arithmetic ---

// xorshift replicates Admission.retryAfter's generator step.
func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

func TestRetryAfterSeededArithmetic(t *testing.T) {
	maxWait := 30 * time.Second
	a := NewAdmission(1<<20, 4, maxWait)

	// The jitter state self-seeds from the golden-ratio constant on first
	// use; replicate the walk and pin the exact values.
	x := uint64(0x9e3779b97f4a7c15)
	for _, waiters := range []int{0, 1, 3, 7} {
		a.mu.Lock()
		a.waiters = waiters
		a.mu.Unlock()

		base := time.Duration(1+waiters) * time.Second
		x = xorshift(x)
		want := base
		if span := int64(base) / 2; span > 0 {
			want += time.Duration(int64(x % uint64(span)))
		}
		if want < time.Second {
			want = time.Second
		}
		if want > maxWait {
			want = maxWait
		}

		a.mu.Lock()
		got := a.retryAfter()
		a.mu.Unlock()
		if got != want {
			t.Fatalf("waiters=%d: retryAfter = %v, want %v (seeded walk diverged)", waiters, got, want)
		}
		// The structural bounds the arithmetic must respect: base grows one
		// second per queued waiter, jitter adds at most +50%.
		if got < base {
			t.Fatalf("waiters=%d: retryAfter %v below base %v", waiters, got, base)
		}
		if got > base+base/2 {
			t.Fatalf("waiters=%d: retryAfter %v exceeds base+50%% (%v)", waiters, got, base+base/2)
		}
	}

	// Deep queues clamp at maxWait.
	a.mu.Lock()
	a.waiters = 1000
	got := a.retryAfter()
	a.mu.Unlock()
	if got != maxWait {
		t.Fatalf("deep queue: retryAfter = %v, want clamp at %v", got, maxWait)
	}
}

func TestRetryAfterGrowsWithQueueDepth(t *testing.T) {
	a := NewAdmission(1<<20, 64, time.Hour)
	var prev time.Duration
	for _, waiters := range []int{0, 4, 16, 63} {
		a.mu.Lock()
		a.waiters = waiters
		got := a.retryAfter()
		a.mu.Unlock()
		if got <= prev {
			t.Fatalf("waiters=%d: retryAfter %v did not grow past %v", waiters, got, prev)
		}
		prev = got
	}
}

// --- peer client ---

// newPeerServer boots a full serve.Server behind httptest for peer tests.
func newPeerServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, nil)
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, hs
}

func TestPeerClientMultiplyBitIdentical(t *testing.T) {
	_, hs := newPeerServer(t)
	pc := NewPeerClient(hs.URL, nil)
	a := intMatrix(48, 4, 5)
	b := intMatrix(48, 4, 6)
	got, err := pc.Multiply(context.Background(), a, b)
	if err != nil {
		t.Fatalf("peer multiply: %v", err)
	}
	eng, _ := pbspgemm.NewEngine(pbspgemm.WithBeta(50))
	ref, err := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		t.Fatalf("local multiply: %v", err)
	}
	if got.NNZ() != ref.C.NNZ() {
		t.Fatalf("nnz: got %d want %d", got.NNZ(), ref.C.NNZ())
	}
	for i := range ref.C.Val {
		if got.Val[i] != ref.C.Val[i] || got.ColIdx[i] != ref.C.ColIdx[i] {
			t.Fatalf("entry %d differs: got (%d,%v) want (%d,%v)",
				i, got.ColIdx[i], got.Val[i], ref.C.ColIdx[i], ref.C.Val[i])
		}
	}
}

func TestPeerClientUploadDedup(t *testing.T) {
	var uploads atomic.Int64
	s := newTestServer(t, nil)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/matrices" {
			uploads.Add(1)
		}
		s.ServeHTTP(w, r)
	}))
	defer hs.Close()
	pc := NewPeerClient(hs.URL, nil)
	a := intMatrix(32, 3, 7)
	b := intMatrix(32, 3, 8)
	for i := 0; i < 3; i++ {
		if _, err := pc.Multiply(context.Background(), a, b); err != nil {
			t.Fatalf("multiply #%d: %v", i, err)
		}
	}
	if got := uploads.Load(); got != 2 {
		t.Fatalf("uploads = %d, want 2 (one per matrix, dedup across calls)", got)
	}
}

func TestPeerClientReuploadsAfterEviction(t *testing.T) {
	peer, hs := newPeerServer(t)
	pc := NewPeerClient(hs.URL, nil)
	a := intMatrix(32, 3, 9)
	b := intMatrix(32, 3, 10)
	if _, err := pc.Multiply(context.Background(), a, b); err != nil {
		t.Fatalf("first multiply: %v", err)
	}
	// Simulate a peer restart: its registry forgets everything, so the
	// client's cached ids are stale and the next multiply 404s.
	for _, info := range peer.Registry().List() {
		peer.Registry().Delete(info.ID)
	}
	if _, err := pc.Multiply(context.Background(), a, b); err != nil {
		t.Fatalf("multiply after eviction: %v (client should re-upload on 404)", err)
	}
}

func TestPeerClientClassifiesStatuses(t *testing.T) {
	for _, tc := range []struct {
		name       string
		status     int
		retryAfter string
		wantRetry  bool
		wantFloor  time.Duration
	}{
		{"shed", http.StatusTooManyRequests, "7", true, 7 * time.Second},
		{"server fault", http.StatusInternalServerError, "", true, 0},
		{"bad request", http.StatusBadRequest, "", false, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/matrices" {
					_ = json.NewEncoder(w).Encode(uploadResponse{MatrixInfo: MatrixInfo{ID: "x"}})
					return
				}
				if tc.retryAfter != "" {
					w.Header().Set("Retry-After", tc.retryAfter)
				}
				w.WriteHeader(tc.status)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "scripted"})
			}))
			defer hs.Close()
			pc := NewPeerClient(hs.URL, nil)
			_, err := pc.Multiply(context.Background(), intMatrix(8, 2, 11), intMatrix(8, 2, 12))
			var re *RemoteError
			if !errors.As(err, &re) {
				t.Fatalf("error = %v, want *RemoteError", err)
			}
			if re.Status != tc.status {
				t.Fatalf("Status = %d, want %d", re.Status, tc.status)
			}
			if re.Retryable() != tc.wantRetry {
				t.Fatalf("Retryable = %v, want %v", re.Retryable(), tc.wantRetry)
			}
			if re.RetryAfter() != tc.wantFloor {
				t.Fatalf("RetryAfter = %v, want %v", re.RetryAfter(), tc.wantFloor)
			}
		})
	}
}

func TestPeerClientTransportErrorRetryable(t *testing.T) {
	hs := httptest.NewServer(http.NotFoundHandler())
	url := hs.URL
	hs.Close() // connection refused from now on
	pc := NewPeerClient(url, nil)
	_, err := pc.Multiply(context.Background(), intMatrix(8, 2, 13), intMatrix(8, 2, 14))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v, want *RemoteError", err)
	}
	if re.Status != 0 || !re.Retryable() {
		t.Fatalf("transport failure: Status=%d Retryable=%v, want 0/true", re.Status, re.Retryable())
	}
}

// --- sharded serving path ---

func TestServerShardedMultiplyViaPeer(t *testing.T) {
	_, peerHS := newPeerServer(t)
	s := newTestServer(t, func(c *Config) {
		c.Peers = []string{peerHS.URL}
		c.ShardBlockBytes = 16 << 10 // force a real grid
		c.ShardLocalWorkers = 2
	})
	a := intMatrix(128, 4, 15)
	b := intMatrix(128, 4, 16)
	ida, idb := uploadText(t, s, a), uploadText(t, s, b)

	body, _ := json.Marshal(multiplyRequest{A: ida, B: idb, Output: "binary"})
	req := httptest.NewRequest("POST", "/multiply", bytes.NewReader(body))
	rec := do(s, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("multiply: status %d body %s", rec.Code, rec.Body)
	}
	got, err := mmio.ReadBinary(rec.Body)
	if err != nil {
		t.Fatalf("decode result: %v", err)
	}

	eng, _ := pbspgemm.NewEngine(pbspgemm.WithBeta(50))
	ref, err := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if got.NNZ() != ref.C.NNZ() {
		t.Fatalf("nnz: got %d want %d", got.NNZ(), ref.C.NNZ())
	}
	for i := range ref.C.Val {
		if got.Val[i] != ref.C.Val[i] {
			t.Fatalf("Val[%d]: got %v want %v (sharded result not bit-identical)", i, got.Val[i], ref.C.Val[i])
		}
	}

	// The shard section must appear on /metrics with the product counted.
	m := s.Metrics()
	if m.Shard == nil || m.Shard.Products != 1 {
		t.Fatalf("metrics Shard = %+v, want Products=1", m.Shard)
	}
}

func TestServerShardRouteRespectsOverrides(t *testing.T) {
	_, peerHS := newPeerServer(t)
	s := newTestServer(t, func(c *Config) { c.Peers = []string{peerHS.URL} })
	a := intMatrix(32, 3, 17)
	b := intMatrix(32, 3, 18)
	sp, _, err := s.resolveSpec(multiplyRequest{A: uploadText(t, s, a), B: uploadText(t, s, b)})
	if err != nil {
		t.Fatal(err)
	}
	if !s.shardable(sp) {
		t.Fatal("plain arithmetic product should be shardable")
	}
	for _, req := range []multiplyRequest{
		{A: sp.req.A, B: sp.req.B, Algorithm: "hash"},
		{A: sp.req.A, B: sp.req.B, Semiring: "boolean"},
		{A: sp.req.A, B: sp.req.B, Threads: 2},
		{A: sp.req.A, B: sp.req.B, MemoryBudgetBytes: 1 << 20},
	} {
		nsp, _, err := s.resolveSpec(req)
		if err != nil {
			t.Fatalf("resolveSpec(%+v): %v", req, err)
		}
		if s.shardable(nsp) {
			t.Fatalf("request %+v must bypass the shard route", req)
		}
	}
}

// --- readiness ---

func TestReadyzReportsQueueAndPeers(t *testing.T) {
	_, peerHS := newPeerServer(t)
	s := newTestServer(t, func(c *Config) {
		c.Peers = []string{peerHS.URL}
		c.MaxQueue = 4
		c.DegradedBudgetBytes = 1 << 20
	})
	rec := do(s, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz: status %d body %s", rec.Code, rec.Body)
	}
	var resp readyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Ready || resp.MaxQueue != 4 || !resp.DegradedMode {
		t.Fatalf("readyz = %+v, want ready, max_queue 4, degraded mode", resp)
	}
	st, ok := resp.Peers[peerHS.URL]
	if !ok {
		t.Fatalf("readyz peers missing %q: %+v", peerHS.URL, resp.Peers)
	}
	if st.State != "closed" {
		t.Fatalf("fresh peer breaker state = %q, want closed", st.State)
	}
	// local pool appears too
	if _, ok := resp.Peers["local"]; !ok {
		t.Fatalf("readyz peers missing local pool: %+v", resp.Peers)
	}
}

func TestReadyzNotReadyWhenQueueFull(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxQueue = 2 })
	s.adm.mu.Lock()
	s.adm.waiters = 2
	s.adm.mu.Unlock()
	rec := do(s, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with full queue: status %d, want 503", rec.Code)
	}
	s.adm.mu.Lock()
	s.adm.waiters = 0
	s.adm.mu.Unlock()
}
