// Package serve is the multiplication-as-a-service layer in front of the
// pbspgemm Engine: a content-addressed matrix registry (upload once, reuse
// zero-copy across requests), an LRU result cache under a global memory
// budget, admission control driven by the Auto planner's pre-execution
// footprint prediction (queue or shed before allocating, never after), and
// request batching that coalesces concurrent identical products onto one
// in-flight multiply while independent ones fan out through the Engine's
// worker pool.
//
// The components — Registry, Cache, Admission, flight group — are plain
// concurrent data structures, unit-testable without sockets; Server wires
// them behind an http.Handler that cmd/pbspgemmd mounts. All request
// contexts propagate to the kernel's phase-boundary cancellation polls, so
// a dropped client stops paying for its product at the next phase edge.
package serve

import (
	"time"

	"pbspgemm"
)

// Config sizes the serving layer. The zero value of any field selects the
// documented default; Engine is required.
type Config struct {
	// Engine executes the products. Required.
	Engine *pbspgemm.Engine

	// MaxUploadBytes caps the bytes consumed from one upload body (text or
	// binary) before the request is rejected with a size error.
	// Default 256 MiB.
	MaxUploadBytes int64
	// RegistryBudgetBytes caps the total resident bytes of registered
	// matrices; uploads past it are rejected until matrices are deleted.
	// Default 2 GiB.
	RegistryBudgetBytes int64
	// CacheBudgetBytes caps the result cache; least-recently-used products
	// are evicted to stay under it. Negative disables caching.
	// Default 512 MiB.
	CacheBudgetBytes int64
	// MemoryCeilingBytes caps the sum of planner-predicted footprints of
	// in-flight multiplications; requests that would exceed it queue, and
	// queue overflow (or a prediction that alone exceeds the ceiling) sheds
	// with 429 + Retry-After. Default 4 GiB.
	MemoryCeilingBytes int64
	// DegradedBudgetBytes, when > 0, enables graceful degradation for
	// requests whose full-speed predicted footprint alone exceeds the memory
	// ceiling: instead of shedding immediately, the server re-plans the
	// product with this per-call memory budget (column-panel tiling bounds
	// the working set) and runs the slower tiled multiply if the degraded
	// footprint fits. Requests that pin an explicit memory_budget_bytes are
	// never overridden — they shed as before. Default 0 (disabled).
	DegradedBudgetBytes int64
	// MaxQueue bounds how many requests may wait for admission at once.
	// Default 64.
	MaxQueue int
	// MaxQueueWait bounds how long one request may wait for admission
	// before it is shed. Default 30s.
	MaxQueueWait time.Duration
	// RequestTimeout is the per-request deadline propagated to the kernel's
	// phase-boundary cancellation polls. Default 2m.
	RequestTimeout time.Duration
	// LatencyWindow is how many recent samples each endpoint's latency
	// percentiles are computed over. Default 1024.
	LatencyWindow int

	// Peers lists base URLs of other pbspgemmd nodes (e.g.
	// "http://host:8080"). Non-empty enables the sharded execution path:
	// unmasked arithmetic products with the auto or pb algorithm and no
	// per-request overrides are 2D block-partitioned and fanned out over
	// the peers (plus a local worker pool), with the shard coordinator's
	// full failure ladder behind them. Empty (the default) serves every
	// product on the local Engine.
	Peers []string
	// ShardBlockBytes is the per-block predicted-footprint target of the
	// sharded path (shard.Config.MaxBlockBytes). <= 0 runs sharded products
	// as one block. Default 0.
	ShardBlockBytes int64
	// ShardLocalWorkers bounds how many sharded blocks may run on the local
	// engine concurrently. Default 1.
	ShardLocalWorkers int
}

// Defaults for the Config fields; exported so cmd/pbspgemmd's flag help and
// the README can quote them from one place.
const (
	DefaultMaxUploadBytes      = int64(256) << 20
	DefaultRegistryBudgetBytes = int64(2) << 30
	DefaultCacheBudgetBytes    = int64(512) << 20
	DefaultMemoryCeilingBytes  = int64(4) << 30
	DefaultMaxQueue            = 64
	DefaultMaxQueueWait        = 30 * time.Second
	DefaultRequestTimeout      = 2 * time.Minute
	DefaultLatencyWindow       = 1024
)

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if c.RegistryBudgetBytes == 0 {
		c.RegistryBudgetBytes = DefaultRegistryBudgetBytes
	}
	if c.CacheBudgetBytes == 0 {
		c.CacheBudgetBytes = DefaultCacheBudgetBytes
	}
	if c.MemoryCeilingBytes == 0 {
		c.MemoryCeilingBytes = DefaultMemoryCeilingBytes
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.MaxQueueWait == 0 {
		c.MaxQueueWait = DefaultMaxQueueWait
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.LatencyWindow == 0 {
		c.LatencyWindow = DefaultLatencyWindow
	}
	return c
}

// csrBytes is the resident cost model of one CSR matrix: (rows+1)×8 RowPtr
// + nnz×(4+8) ColIdx/Val. Registry and cache budgets both account in it.
func csrBytes(m *pbspgemm.CSR) int64 {
	return int64(len(m.RowPtr))*8 + m.NNZ()*12
}
