package serve

import (
	"sync"
	"time"

	"pbspgemm/internal/metrics"
)

// TenantStats is one tenant's slice of the server counters, accumulated
// from the requests carrying its X-Tenant header (absent header = the
// "default" tenant). Multiply outcomes are attributed however they were
// served — a cache hit and a coalesced follower both count their flops,
// because the tenant received the product either way.
type TenantStats struct {
	Requests    int64         `json:"requests"`
	Multiplies  int64         `json:"multiplies"`
	CacheHits   int64         `json:"cache_hits"`
	Coalesced   int64         `json:"coalesced"`
	Shed        int64         `json:"shed"`
	Errors      int64         `json:"errors"`
	Flops       int64         `json:"flops"`
	NNZProduced int64         `json:"nnz_produced"`
	Busy        time.Duration `json:"busy_ns"`
}

// tenantSet aggregates per-tenant counters. Safe for concurrent use.
type tenantSet struct {
	mu sync.Mutex
	m  map[string]*TenantStats
}

func newTenantSet() *tenantSet { return &tenantSet{m: make(map[string]*TenantStats)} }

// update applies fn to tenant's counters under the lock.
func (t *tenantSet) update(tenant string, fn func(*TenantStats)) {
	if tenant == "" {
		tenant = "default"
	}
	t.mu.Lock()
	ts, ok := t.m[tenant]
	if !ok {
		ts = &TenantStats{}
		t.m[tenant] = ts
	}
	fn(ts)
	t.mu.Unlock()
}

// snapshot copies the per-tenant counters.
func (t *tenantSet) snapshot() map[string]TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]TenantStats, len(t.m))
	for k, v := range t.m {
		out[k] = *v
	}
	return out
}

// latencyRing keeps the last cap samples of one endpoint's latency (seconds)
// plus a total request count, enough for windowed percentiles without
// unbounded memory.
type latencyRing struct {
	buf   []float64
	next  int
	count int64
}

// latencySet tracks per-endpoint latency rings. Safe for concurrent use.
type latencySet struct {
	mu  sync.Mutex
	cap int
	m   map[string]*latencyRing
}

func newLatencySet(window int) *latencySet {
	return &latencySet{cap: window, m: make(map[string]*latencyRing)}
}

// observe records one request's latency under the endpoint label.
func (l *latencySet) observe(endpoint string, d time.Duration) {
	l.mu.Lock()
	r, ok := l.m[endpoint]
	if !ok {
		r = &latencyRing{}
		l.m[endpoint] = r
	}
	if len(r.buf) < l.cap {
		r.buf = append(r.buf, d.Seconds())
	} else {
		r.buf[r.next] = d.Seconds()
		r.next = (r.next + 1) % l.cap
	}
	r.count++
	l.mu.Unlock()
}

// LatencyStats is one endpoint's windowed latency distribution, in
// milliseconds (the natural unit for serving dashboards).
type LatencyStats struct {
	// Count is the total requests observed (not just the window).
	Count int64 `json:"count"`
	// Window is how many recent samples the percentiles cover.
	Window int     `json:"window"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// snapshot summarizes every endpoint's ring with metrics.Summarize — the
// p50/p95/p99 this PR added there are exactly the serving percentiles.
func (l *latencySet) snapshot() map[string]LatencyStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]LatencyStats, len(l.m))
	for k, r := range l.m {
		s := metrics.Summarize(r.buf)
		out[k] = LatencyStats{
			Count: r.count, Window: s.N,
			MeanMs: s.Mean * 1e3,
			P50Ms:  s.P50 * 1e3, P95Ms: s.P95 * 1e3, P99Ms: s.P99 * 1e3,
			MaxMs: s.Max * 1e3,
		}
	}
	return out
}
