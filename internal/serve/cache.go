package serve

import (
	"container/list"
	"sync"
	"time"

	"pbspgemm"
)

// Product is one computed multiplication as the serving layer retains it:
// the result matrix plus the run metadata responses report. Cached Products
// are shared across responses and must be treated as read-only.
type Product struct {
	C         *pbspgemm.CSR
	Algorithm string
	Flops     int64
	CF        float64
	Elapsed   time.Duration
	// Bytes is the resident cost (csrBytes of C) the cache accounts.
	Bytes int64
	// Degraded reports the product ran under the server's degraded memory
	// budget (tiled) after its full-speed footprint was inadmissible.
	Degraded bool
}

// Cache is the result cache: LRU over Products keyed by the full request
// identity (input hashes, semiring, mask, options — see productKey), bounded
// by a global memory budget. A repeated product is served from here without
// touching the Engine at all. Safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	m      map[string]*list.Element

	hits, misses, evictions, rejected int64
}

type cacheEntry struct {
	key string
	p   *Product
}

// NewCache creates a cache evicting LRU entries to stay under budget bytes.
// budget <= 0 disables caching entirely (Get always misses, Add drops).
func NewCache(budget int64) *Cache {
	return &Cache{budget: budget, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached product for key, marking it most recently used.
func (c *Cache) Get(key string) (*Product, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).p, true
}

// Add stores p under key, evicting least-recently-used entries until the
// budget holds. A product larger than the whole budget is not stored (it
// would evict everything and then still not fit); Stats counts it rejected.
func (c *Cache) Add(key string, p *Product) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 || p.Bytes > c.budget {
		c.rejected++
		return
	}
	if el, ok := c.m[key]; ok {
		// Same key computed twice (e.g. a flight that raced an eviction):
		// keep the existing entry, it is byte-identical by construction.
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, p: p})
	c.bytes += p.Bytes
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.m, e.key)
		c.bytes -= e.p.Bytes
		c.evictions++
	}
}

// Len returns the number of cached products.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports the cache counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: c.ll.Len(), Bytes: c.bytes, BudgetBytes: c.budget,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Rejected: c.rejected,
	}
}

// CacheStats is the cache's slice of the /metrics snapshot.
type CacheStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	// Rejected counts products too large for the budget (never cached).
	Rejected int64 `json:"rejected"`
}
