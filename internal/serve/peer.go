package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pbspgemm"
	"pbspgemm/internal/faultinject"
	"pbspgemm/internal/mmio"
)

// RemoteError is a failed exchange with a pbspgemmd peer, classified for
// the shard coordinator's retry ladder: transport failures (Status 0),
// sheds (429, with the server's Retry-After carried as a backoff floor) and
// server faults (5xx) are retryable; everything else — a 4xx the peer will
// repeat verbatim — is not.
type RemoteError struct {
	// Peer is the base URL of the peer that failed.
	Peer string
	// Status is the HTTP status, 0 for transport-level failures (dial,
	// TLS, connection reset mid-body).
	Status int
	// RetryAfterDur carries a 429's Retry-After, 0 otherwise.
	RetryAfterDur time.Duration
	// Err is the underlying cause.
	Err error
}

func (e *RemoteError) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("serve: peer %s: %v", e.Peer, e.Err)
	}
	return fmt.Sprintf("serve: peer %s: status %d: %v", e.Peer, e.Status, e.Err)
}

func (e *RemoteError) Unwrap() error { return e.Err }

// Retryable implements the shard coordinator's classification interface.
func (e *RemoteError) Retryable() bool {
	return e.Status == 0 || e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// RetryAfter implements the coordinator's backoff-floor interface.
func (e *RemoteError) RetryAfter() time.Duration { return e.RetryAfterDur }

// PeerClient executes block multiplies on a remote pbspgemmd and implements
// shard.Backend. Matrices travel in the PBSP binary framing and are
// deduplicated by the peer's content-addressed registry: a block uploaded
// once is never re-sent while the peer remembers it (the client caches the
// returned content id per *CSR and re-uploads transparently on a 404 after
// the peer evicted or restarted). The multiply itself is pinned to the PB
// kernel so every peer folds in the same order — the coordinator's
// bit-identity contract. Safe for concurrent use.
type PeerClient struct {
	base   string
	client *http.Client

	// ids caches the peer-assigned content id per uploaded matrix pointer;
	// inflight collapses concurrent uploads of the same pointer into one.
	mu       sync.Mutex
	ids      map[*pbspgemm.CSR]string
	inflight map[*pbspgemm.CSR]chan struct{}
}

// NewPeerClient wires a client for the pbspgemmd at base (e.g.
// "http://host:8080"). client nil selects a default with sane timeouts.
func NewPeerClient(base string, client *http.Client) *PeerClient {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	return &PeerClient{
		base:     base,
		client:   client,
		ids:      make(map[*pbspgemm.CSR]string),
		inflight: make(map[*pbspgemm.CSR]chan struct{}),
	}
}

// Name implements shard.Backend.
func (p *PeerClient) Name() string { return p.base }

// Probe implements shard.Backend: a half-open breaker GETs the peer's
// /healthz before trusting it with a real block again.
func (p *PeerClient) Probe(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return &RemoteError{Peer: p.base, Err: err}
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &RemoteError{Peer: p.base, Status: resp.StatusCode,
			Err: fmt.Errorf("healthz returned %s", resp.Status)}
	}
	return nil
}

// Multiply implements shard.Backend: upload both factors (deduplicated),
// then POST /multiply with the PB kernel and the binary result framing. A
// 404 — the peer evicted or restarted since the upload — invalidates the
// cached ids and retries once with fresh uploads.
func (p *PeerClient) Multiply(ctx context.Context, a, b *pbspgemm.CSR) (*pbspgemm.CSR, error) {
	if faultinject.Enabled {
		if err := faultinject.FireErr(faultinject.SitePeerDial, -1); err != nil {
			return nil, &RemoteError{Peer: p.base, Err: err}
		}
	}
	for attempt := 0; ; attempt++ {
		ida, err := p.uploadID(ctx, a)
		if err != nil {
			return nil, err
		}
		idb, err := p.uploadID(ctx, b)
		if err != nil {
			return nil, err
		}
		c, err := p.multiply(ctx, ida, idb)
		var re *RemoteError
		if err != nil && attempt == 0 && asRemote(err, &re) && re.Status == http.StatusNotFound {
			// The peer forgot the factors (eviction, restart): drop our view
			// of its registry and re-upload once.
			p.invalidate(a)
			p.invalidate(b)
			continue
		}
		return c, err
	}
}

// asRemote is errors.As without the reflection detour for the common type.
func asRemote(err error, target **RemoteError) bool {
	for err != nil {
		if re, ok := err.(*RemoteError); ok {
			*target = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// uploadID returns the peer's content id for m, uploading it at most once
// per client (concurrent callers for the same pointer wait for one upload).
func (p *PeerClient) uploadID(ctx context.Context, m *pbspgemm.CSR) (string, error) {
	for {
		p.mu.Lock()
		if id, ok := p.ids[m]; ok {
			p.mu.Unlock()
			return id, nil
		}
		if ch, ok := p.inflight[m]; ok {
			p.mu.Unlock()
			select {
			case <-ch:
				continue // re-check: the winner cached the id (or failed)
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
		ch := make(chan struct{})
		p.inflight[m] = ch
		p.mu.Unlock()

		id, err := p.upload(ctx, m)
		p.mu.Lock()
		delete(p.inflight, m)
		if err == nil {
			p.ids[m] = id
		}
		p.mu.Unlock()
		close(ch)
		return id, err
	}
}

// invalidate forgets the cached content id of m.
func (p *PeerClient) invalidate(m *pbspgemm.CSR) {
	p.mu.Lock()
	delete(p.ids, m)
	p.mu.Unlock()
}

// upload POSTs m in the PBSP binary framing and returns the content id.
func (p *PeerClient) upload(ctx context.Context, m *pbspgemm.CSR) (string, error) {
	var buf bytes.Buffer
	if err := mmio.WriteBinary(&buf, m); err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+"/matrices", &buf)
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client.Do(req)
	if err != nil {
		return "", &RemoteError{Peer: p.base, Err: err}
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return "", p.statusError(resp, "upload")
	}
	var ur uploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		return "", &RemoteError{Peer: p.base, Err: fmt.Errorf("bad upload response: %w", err)}
	}
	return ur.ID, nil
}

// multiply POSTs the product request and decodes the binary result.
func (p *PeerClient) multiply(ctx context.Context, ida, idb string) (*pbspgemm.CSR, error) {
	body, err := json.Marshal(multiplyRequest{A: ida, B: idb, Algorithm: "pb", Output: "binary"})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+"/multiply", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, &RemoteError{Peer: p.base, Err: err}
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, p.statusError(resp, "multiply")
	}
	c, err := mmio.ReadBinary(resp.Body)
	if err != nil {
		// A truncated or corrupt body is a transport failure: retryable.
		return nil, &RemoteError{Peer: p.base, Err: fmt.Errorf("bad result body: %w", err)}
	}
	return c, nil
}

// statusError folds a non-2xx reply (its JSON error body, Retry-After) into
// a RemoteError.
func (p *PeerClient) statusError(resp *http.Response, op string) *RemoteError {
	re := &RemoteError{Peer: p.base, Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs > 0 {
			re.RetryAfterDur = time.Duration(secs) * time.Second
		}
	}
	var body struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body) == nil && body.Error != "" {
		re.Err = fmt.Errorf("%s: %s", op, body.Error)
	} else {
		re.Err = fmt.Errorf("%s: %s", op, resp.Status)
	}
	return re
}

// drain consumes and closes a response body so the connection is reusable.
func drain(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(rc, 1<<20))
	rc.Close()
}
