package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pbspgemm"
	"pbspgemm/internal/faultinject"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/mmio"
	"pbspgemm/internal/par"
	"pbspgemm/internal/shard"
)

// Server is the HTTP serving layer: an http.Handler wiring the registry,
// result cache, admission controller and flight group around one Engine.
//
// Endpoints:
//
//	POST   /matrices        upload (Matrix Market text or PBSP binary, sniffed)
//	GET    /matrices        list registered matrices
//	GET    /matrices/{id}   one matrix's metadata
//	DELETE /matrices/{id}   unregister
//	POST   /multiply        compute (or fetch) a product
//	POST   /plan            dry-run the planner + admission for a product
//	GET    /metrics         engine, cache, admission, tenant and latency stats
//	GET    /healthz         liveness (the process serves HTTP at all)
//	GET    /readyz          readiness (queue headroom, degradation, peer breakers)
type Server struct {
	cfg     Config
	eng     *pbspgemm.Engine
	reg     *Registry
	cache   *Cache
	adm     *Admission
	flights *flightGroup
	tenants *tenantSet
	lat     *latencySet
	mux     *http.ServeMux

	// coord is the sharded execution path, nil unless Config.Peers is set.
	coord *shard.Coordinator

	// panics counts handler panics contained by the route middleware (500
	// for the hit request only; the server keeps serving). degraded counts
	// products that ran the budgeted tiled retry after their full-speed
	// footprint was inadmissible.
	panics   atomic.Int64
	degraded atomic.Int64

	// execute runs one admitted product; tests swap it to gate in-flight
	// multiplications deterministically. Admission and caching stay in the
	// caller either way.
	execute func(ctx context.Context, spec *productSpec) (*Product, error)
}

// NewServer wires a serving layer over cfg.Engine.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: Config.Engine is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		reg:     NewRegistry(cfg.RegistryBudgetBytes),
		cache:   NewCache(cfg.CacheBudgetBytes),
		adm:     NewAdmission(cfg.MemoryCeilingBytes, cfg.MaxQueue, cfg.MaxQueueWait),
		flights: newFlightGroup(),
		tenants: newTenantSet(),
		lat:     newLatencySet(cfg.LatencyWindow),
	}
	if len(cfg.Peers) > 0 {
		backends := []shard.Backend{shard.NewEnginePool("local", cfg.Engine, cfg.ShardLocalWorkers)}
		for _, peer := range cfg.Peers {
			backends = append(backends, NewPeerClient(peer, nil))
		}
		coord, err := shard.New(shard.Config{
			Local:         cfg.Engine,
			Backends:      backends,
			MaxBlockBytes: cfg.ShardBlockBytes,
		})
		if err != nil {
			return nil, err
		}
		s.coord = coord
	}
	s.execute = s.runProduct
	s.mux = http.NewServeMux()
	s.route("POST /matrices", s.handleUpload)
	s.route("GET /matrices", s.handleListMatrices)
	s.route("GET /matrices/{id}", s.handleGetMatrix)
	s.route("DELETE /matrices/{id}", s.handleDeleteMatrix)
	s.route("POST /multiply", s.handleMultiply)
	s.route("POST /plan", s.handlePlan)
	s.route("GET /metrics", s.handleMetrics)
	// Liveness and readiness are mounted raw — no latency tracking, no
	// tenant accounting — so health probes stay answerable even when the
	// serving middleware is the thing that is broken.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s, nil
}

// readyResponse is the GET /readyz document. Liveness (/healthz) answers
// "is the process up"; readiness answers "should a load balancer send the
// next product here": 503 once the admission queue is full (every further
// multiply would shed anyway), 200 otherwise, with queue depth, degraded
// mode and the per-peer breaker states for operators either way.
type readyResponse struct {
	Ready bool `json:"ready"`
	// QueueDepth and MaxQueue are the admission queue's occupancy.
	QueueDepth int `json:"queue_depth"`
	MaxQueue   int `json:"max_queue"`
	// DegradedMode reports whether the budgeted tiled retry is enabled
	// (Config.DegradedBudgetBytes > 0) — a node in degraded mode keeps
	// absorbing oversized products slower instead of shedding them.
	DegradedMode bool `json:"degraded_mode"`
	// Peers maps each shard backend to its circuit-breaker state; empty on
	// single-node deployments.
	Peers map[string]shard.BreakerStatus `json:"peers,omitempty"`
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	adm := s.adm.Stats()
	resp := readyResponse{
		QueueDepth:   adm.Waiting,
		MaxQueue:     s.cfg.MaxQueue,
		DegradedMode: s.cfg.DegradedBudgetBytes > 0,
	}
	resp.Ready = adm.Waiting < s.cfg.MaxQueue
	if s.coord != nil {
		resp.Peers = s.coord.Status().Peers
	}
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry exposes the matrix registry (for embedding programs and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Cache exposes the result cache.
func (s *Server) Cache() *Cache { return s.cache }

// Admission exposes the admission controller.
func (s *Server) Admission() *Admission { return s.adm }

// route mounts h under pattern with the latency/tenant/recovery middleware;
// the pattern doubles as the endpoint label in /metrics.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.tenants.update(r.Header.Get("X-Tenant"), func(t *TenantStats) { t.Requests++ })
		defer func() {
			// Contain a handler panic to its own request: 500 for the hit
			// caller (best-effort — the body may be partially written), every
			// other in-flight and future request keeps serving. Kernel panics
			// never reach here (the engine converts them to *par.PanicError
			// returns); this is the last line for serving-layer bugs.
			if v := recover(); v != nil {
				s.panics.Add(1)
				httpError(w, http.StatusInternalServerError,
					fmt.Errorf("serve: internal panic in %s: %v", pattern, v))
			}
			s.lat.observe(pattern, time.Since(start))
		}()
		h(w, r)
	})
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// --- uploads ---

// uploadResponse is the POST /matrices reply.
type uploadResponse struct {
	MatrixInfo
	// Existed reports content-hash dedup: the exact matrix was already
	// registered and no new memory was spent.
	Existed bool `json:"existed"`
}

// handleUpload ingests one matrix, Matrix Market text or PBSP binary
// (sniffed from the first bytes), bounded by MaxUploadBytes either way.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(mmio.LimitReader(r.Body, s.cfg.MaxUploadBytes), 1<<20)
	var m *pbspgemm.CSR
	var err error
	if isBinaryUpload(br) {
		m, err = mmio.ReadBinary(br)
	} else {
		m, err = mmio.ReadMatrixMarket(br)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, mmio.ErrTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, err)
		return
	}
	info, existed, err := s.reg.Put(m, r.URL.Query().Get("name"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrRegistryFull) {
			status = http.StatusInsufficientStorage
		}
		httpError(w, status, err)
		return
	}
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(uploadResponse{MatrixInfo: info, Existed: existed})
}

// isBinaryUpload sniffs the PBSP binary magic without consuming it.
func isBinaryUpload(br *bufio.Reader) bool {
	peek, err := br.Peek(4)
	if err != nil || len(peek) < 4 {
		return false
	}
	magic := uint32(peek[0]) | uint32(peek[1])<<8 | uint32(peek[2])<<16 | uint32(peek[3])<<24
	return magic == 0x50425350 // mmio's binaryMagic, little-endian
}

func (s *Server) handleListMatrices(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"matrices": s.reg.List()})
}

func (s *Server) handleGetMatrix(w http.ResponseWriter, r *http.Request) {
	_, info, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(info)
}

func (s *Server) handleDeleteMatrix(w http.ResponseWriter, r *http.Request) {
	if !s.reg.Delete(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- multiply ---

// multiplyRequest is the POST /multiply (and /plan) body.
type multiplyRequest struct {
	// A, B are registry ids of the factors.
	A string `json:"a"`
	B string `json:"b"`
	// Semiring: arithmetic (default), boolean, minplus, maxtimes.
	Semiring string `json:"semiring,omitempty"`
	// Algorithm: auto (default), pb, heap, hash, hashvec, spa, esc.
	// Arithmetic unmasked products only; other paths run the PB-structured
	// semiring kernel.
	Algorithm string `json:"algorithm,omitempty"`
	// Mask is an optional registry id applied as C⟨M⟩ (arithmetic only);
	// Complement flips it to ⟨¬M⟩.
	Mask       string `json:"mask,omitempty"`
	Complement bool   `json:"complement,omitempty"`
	// Threads and MemoryBudgetBytes override the engine defaults per call.
	Threads           int   `json:"threads,omitempty"`
	MemoryBudgetBytes int64 `json:"memory_budget_bytes,omitempty"`
	// Output: metadata (default), matrixmarket, binary.
	Output string `json:"output,omitempty"`
}

// productSpec is a resolved, validated multiply request.
type productSpec struct {
	req        multiplyRequest
	a, b, mask *pbspgemm.CSR
	algorithm  pbspgemm.Algorithm
	semiring   string
}

// key is the full request identity the cache and flight group share: both
// inputs' content hashes, the algebra, the mask, and every option that can
// change the bytes of the result.
func (sp *productSpec) key() string {
	return strings.Join([]string{
		sp.req.A, sp.req.B, sp.semiring, sp.req.Mask,
		strconv.FormatBool(sp.req.Complement), sp.algorithm.String(),
		strconv.Itoa(sp.req.Threads), strconv.FormatInt(sp.req.MemoryBudgetBytes, 10),
	}, "|")
}

// engineOptions are the per-call overrides shared by every execution path.
func (sp *productSpec) engineOptions() []pbspgemm.Option {
	return []pbspgemm.Option{
		pbspgemm.WithThreads(sp.req.Threads),
		pbspgemm.WithMemoryBudget(sp.req.MemoryBudgetBytes),
	}
}

// resolveSpec validates the request against the registry.
func (s *Server) resolveSpec(req multiplyRequest) (*productSpec, int, error) {
	sp := &productSpec{req: req, semiring: req.Semiring, algorithm: pbspgemm.Auto}
	if sp.semiring == "" {
		sp.semiring = "arithmetic"
	}
	switch sp.semiring {
	case "arithmetic", "boolean", "minplus", "maxtimes":
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("serve: unknown semiring %q", req.Semiring)
	}
	if req.Algorithm != "" {
		alg, err := parseAlgorithm(req.Algorithm)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		sp.algorithm = alg
	}
	switch req.Output {
	case "", "metadata", "matrixmarket", "binary":
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("serve: unknown output %q", req.Output)
	}
	if req.Threads < 0 || req.MemoryBudgetBytes < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("serve: negative threads or memory budget")
	}
	var ok bool
	if sp.a, _, ok = s.reg.Get(req.A); !ok {
		return nil, http.StatusNotFound, fmt.Errorf("%w: a=%q", ErrNotFound, req.A)
	}
	if sp.b, _, ok = s.reg.Get(req.B); !ok {
		return nil, http.StatusNotFound, fmt.Errorf("%w: b=%q", ErrNotFound, req.B)
	}
	if req.Mask != "" {
		if sp.semiring != "arithmetic" {
			return nil, http.StatusBadRequest,
				fmt.Errorf("serve: masks are supported on the arithmetic semiring only")
		}
		if sp.mask, _, ok = s.reg.Get(req.Mask); !ok {
			return nil, http.StatusNotFound, fmt.Errorf("%w: mask=%q", ErrNotFound, req.Mask)
		}
	} else if req.Complement {
		return nil, http.StatusBadRequest, fmt.Errorf("serve: complement without a mask")
	}
	if sp.a.NumCols != sp.b.NumRows {
		return nil, http.StatusBadRequest, fmt.Errorf(
			"serve: inner dimensions disagree (%dx%d)·(%dx%d): %w",
			sp.a.NumRows, sp.a.NumCols, sp.b.NumRows, sp.b.NumCols, matrix.ErrShape)
	}
	if sp.mask != nil && (sp.mask.NumRows != sp.a.NumRows || sp.mask.NumCols != sp.b.NumCols) {
		return nil, http.StatusBadRequest, fmt.Errorf(
			"serve: mask is %dx%d, product is %dx%d: %w",
			sp.mask.NumRows, sp.mask.NumCols, sp.a.NumRows, sp.b.NumCols, matrix.ErrShape)
	}
	return sp, 0, nil
}

// parseAlgorithm maps the request string to an Algorithm.
func parseAlgorithm(s string) (pbspgemm.Algorithm, error) {
	switch strings.ToLower(s) {
	case "auto":
		return pbspgemm.Auto, nil
	case "pb":
		return pbspgemm.PB, nil
	case "heap":
		return pbspgemm.Heap, nil
	case "hash":
		return pbspgemm.Hash, nil
	case "hashvec":
		return pbspgemm.HashVec, nil
	case "spa":
		return pbspgemm.SPA, nil
	case "esc":
		return pbspgemm.ColumnESC, nil
	}
	return 0, fmt.Errorf("serve: unknown algorithm %q", s)
}

// multiplyResponse is the POST /multiply metadata reply. With
// output=matrixmarket|binary the same fields travel as X-Pbspgemm-* headers
// ahead of the matrix body.
type multiplyResponse struct {
	A         string  `json:"a"`
	B         string  `json:"b"`
	Semiring  string  `json:"semiring"`
	Algorithm string  `json:"algorithm"`
	Rows      int32   `json:"rows"`
	Cols      int32   `json:"cols"`
	NNZ       int64   `json:"nnz"`
	Flops     int64   `json:"flops"`
	CF        float64 `json:"cf"`
	// ElapsedNs is the original compute time (a cache hit reports the time
	// the cached run took, not the lookup).
	ElapsedNs int64 `json:"elapsed_ns"`
	// Cached reports a result-cache hit: the Engine never saw this request.
	Cached bool `json:"cached"`
	// Coalesced reports singleflight batching: this request waited on an
	// identical in-flight multiply instead of starting its own.
	Coalesced bool `json:"coalesced"`
	// Degraded reports graceful degradation: the full-speed footprint was
	// inadmissible, so the product ran under Config.DegradedBudgetBytes
	// (tiled, slower, same result) instead of shedding with 429.
	Degraded bool `json:"degraded"`
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get("X-Tenant")
	var req multiplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	sp, status, err := s.resolveSpec(req)
	if err != nil {
		s.tenants.update(tenant, func(t *TenantStats) { t.Errors++ })
		httpError(w, status, err)
		return
	}
	if faultinject.Enabled {
		faultinject.Fire(faultinject.SiteServeHandler, -1)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	p, how, err := s.product(ctx, sp)
	if err != nil {
		s.failMultiply(w, tenant, err)
		return
	}
	s.tenants.update(tenant, func(t *TenantStats) {
		t.Multiplies++
		t.Flops += p.Flops
		t.NNZProduced += p.C.NNZ()
		t.Busy += p.Elapsed
		switch how {
		case viaCache:
			t.CacheHits++
		case viaFlight:
			t.Coalesced++
		}
	})
	resp := multiplyResponse{
		A: sp.req.A, B: sp.req.B, Semiring: sp.semiring, Algorithm: p.Algorithm,
		Rows: p.C.NumRows, Cols: p.C.NumCols, NNZ: p.C.NNZ(),
		Flops: p.Flops, CF: p.CF, ElapsedNs: int64(p.Elapsed),
		Cached: how == viaCache, Coalesced: how == viaFlight, Degraded: p.Degraded,
	}
	switch sp.req.Output {
	case "", "metadata":
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	case "matrixmarket":
		s.writeResultHeaders(w, &resp)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = mmio.WriteMatrixMarket(w, p.C)
	case "binary":
		s.writeResultHeaders(w, &resp)
		w.Header().Set("Content-Type", "application/octet-stream")
		_ = mmio.WriteBinary(w, p.C)
	}
}

// writeResultHeaders carries the metadata of a matrix-body response.
func (s *Server) writeResultHeaders(w http.ResponseWriter, resp *multiplyResponse) {
	h := w.Header()
	h.Set("X-Pbspgemm-Algorithm", resp.Algorithm)
	h.Set("X-Pbspgemm-Nnz", strconv.FormatInt(resp.NNZ, 10))
	h.Set("X-Pbspgemm-Flops", strconv.FormatInt(resp.Flops, 10))
	h.Set("X-Pbspgemm-Cached", strconv.FormatBool(resp.Cached))
	h.Set("X-Pbspgemm-Coalesced", strconv.FormatBool(resp.Coalesced))
	h.Set("X-Pbspgemm-Degraded", strconv.FormatBool(resp.Degraded))
}

// failMultiply maps a product error to its HTTP shape and tenant counters.
func (s *Server) failMultiply(w http.ResponseWriter, tenant string, err error) {
	var shed *ShedError
	var pe *par.PanicError
	switch {
	case errors.As(err, &pe):
		// A contained kernel panic: this request's multiply died, the engine
		// and every other tenant keep serving.
		s.tenants.update(tenant, func(t *TenantStats) { t.Errors++ })
		httpError(w, http.StatusInternalServerError, err)
	case errors.As(err, &shed):
		s.tenants.update(tenant, func(t *TenantStats) { t.Shed++ })
		secs := int64(shed.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.tenants.update(tenant, func(t *TenantStats) { t.Errors++ })
		httpError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		// Client went away; the response is moot but complete the exchange.
		s.tenants.update(tenant, func(t *TenantStats) { t.Errors++ })
		httpError(w, 499, err)
	default:
		s.tenants.update(tenant, func(t *TenantStats) { t.Errors++ })
		httpError(w, http.StatusInternalServerError, err)
	}
}

// servedVia says how a product reached its requester.
type servedVia int

const (
	viaEngine servedVia = iota // this request ran the multiply
	viaCache                   // result cache hit
	viaFlight                  // coalesced onto another request's multiply
)

// product serves one resolved request: result cache, then singleflight
// (whose leader passes admission and runs the Engine), caching the product
// for the next identical request. A footprint-inadmissible request walks the
// degradation ladder before shedding: full-speed run → budgeted tiled retry
// (when Config.DegradedBudgetBytes allows) → 429.
func (s *Server) product(ctx context.Context, sp *productSpec) (*Product, servedVia, error) {
	key := sp.key()
	if p, ok := s.cache.Get(key); ok {
		return p, viaCache, nil
	}
	p, shared, err := s.flights.do(ctx, key, func(fctx context.Context) (*Product, error) {
		// The flight context is detached from the leader's request (a short
		// leader deadline must not poison the followers' result) but still
		// bounded: a fresh RequestTimeout, plus cancellation when the last
		// waiter leaves.
		fctx, fcancel := context.WithTimeout(fctx, s.cfg.RequestTimeout)
		defer fcancel()
		run := sp
		degraded := false
		plan, err := s.eng.Plan(fctx, run.a, run.b, run.engineOptions()...)
		if err != nil {
			return nil, err
		}
		predicted := plan.PredictedFootprintBytes
		if err := s.adm.Acquire(fctx, predicted); err != nil {
			deg, degPredicted, ok := s.degradedSpec(fctx, sp, err)
			if !ok {
				return nil, err
			}
			if aerr := s.adm.Acquire(fctx, degPredicted); aerr != nil {
				// Even the tiled footprint could not be admitted; report the
				// original full-run shed (still a 429 + Retry-After).
				return nil, err
			}
			run, predicted, degraded = deg, degPredicted, true
			s.degraded.Add(1)
		}
		defer s.adm.Release(predicted)
		p, err := s.execute(fctx, run)
		if err != nil {
			return nil, err
		}
		p.Degraded = degraded
		// Cached under the original key: the tiled run folds the same
		// tuples in the same order, so the bytes of C are identical.
		s.cache.Add(key, p)
		return p, nil
	})
	if err != nil {
		return nil, viaEngine, err
	}
	via := viaEngine
	if shared {
		via = viaFlight
	}
	return p, via, nil
}

// degradedSpec is the degradation ladder's middle rung: when the full-speed
// request was shed because its predicted footprint alone exceeds the
// ceiling, re-plan it under the configured degraded memory budget — the
// budgeted engine tiles A's columns into panels, bounding the working set —
// and offer that for admission instead. Returns ok=false when degradation is
// disabled, the request pinned its own budget, the shed had a different
// reason (queue pressure is not helped by shrinking one request), or even
// the tiled footprint exceeds the ceiling.
func (s *Server) degradedSpec(ctx context.Context, sp *productSpec, shedErr error) (*productSpec, int64, bool) {
	var shed *ShedError
	if s.cfg.DegradedBudgetBytes <= 0 || sp.req.MemoryBudgetBytes > 0 ||
		!errors.As(shedErr, &shed) || shed.Reason != ReasonFootprint {
		return nil, 0, false
	}
	deg := *sp
	deg.req.MemoryBudgetBytes = s.cfg.DegradedBudgetBytes
	plan, err := s.eng.Plan(ctx, deg.a, deg.b, deg.engineOptions()...)
	if err != nil || plan.PredictedFootprintBytes > shed.CeilingBytes {
		return nil, 0, false
	}
	return &deg, plan.PredictedFootprintBytes, true
}

// runProduct executes one admitted product on the Engine (or, when peers
// are configured and the request is shardable, fans it out through the
// coordinator). This is the only place the serving layer multiplies.
func (s *Server) runProduct(ctx context.Context, sp *productSpec) (*Product, error) {
	opts := sp.engineOptions()
	switch {
	case s.shardable(sp):
		res, err := s.coord.Multiply(ctx, sp.a, sp.b)
		if err != nil {
			return nil, err
		}
		p := &Product{
			C:         res.C,
			Algorithm: "PB-SpGEMM(sharded " + res.Grid.String() + ")",
			Flops:     res.Flops, Elapsed: res.Elapsed, Bytes: csrBytes(res.C),
		}
		if nnz := res.C.NNZ(); nnz > 0 {
			p.CF = float64(res.Flops) / float64(nnz)
		}
		return p, nil
	case sp.semiring == "arithmetic" && sp.mask == nil:
		res, err := s.eng.Multiply(ctx, sp.a, sp.b, append(opts, pbspgemm.WithAlgorithm(sp.algorithm))...)
		if err != nil {
			return nil, err
		}
		return &Product{
			C: res.C, Algorithm: res.Algorithm.String(),
			Flops: res.Flops, CF: res.CF, Elapsed: res.Elapsed,
			Bytes: csrBytes(res.C),
		}, nil
	case sp.semiring == "arithmetic":
		if sp.req.Complement {
			opts = append(opts, pbspgemm.WithComplementMask(sp.mask))
		}
		start := time.Now()
		mask := sp.mask
		if sp.req.Complement {
			mask = nil // the option carries it; a mask argument would override the complement
		}
		c, err := s.eng.MultiplyMasked(ctx, sp.a, sp.b, mask, opts...)
		if err != nil {
			return nil, err
		}
		return productOf(c, "PB-SpGEMM(masked)", pbspgemm.Flops(sp.a, sp.b), time.Since(start)), nil
	case sp.semiring == "boolean":
		start := time.Now()
		ac := pbspgemm.MatrixOf(sp.a, func(float64) bool { return true }).ToCSC()
		br := pbspgemm.MatrixOf(sp.b, func(float64) bool { return true })
		g, err := pbspgemm.EngineMultiplyOver(s.eng, ctx, pbspgemm.Boolean(), ac, br, opts...)
		if err != nil {
			return nil, err
		}
		return productOf(boolCSR(g), "PB-SpGEMM(boolean)", pbspgemm.Flops(sp.a, sp.b), time.Since(start)), nil
	default: // minplus, maxtimes: float64-valued tropical algebras
		sr := pbspgemm.MinPlus()
		if sp.semiring == "maxtimes" {
			sr = pbspgemm.MaxTimes()
		}
		start := time.Now()
		ac := pbspgemm.Float64Matrix(sp.a).ToCSC()
		g, err := pbspgemm.EngineMultiplyOver(s.eng, ctx, sr, ac, pbspgemm.Float64Matrix(sp.b), opts...)
		if err != nil {
			return nil, err
		}
		return productOf(pbspgemm.Float64CSR(g), "PB-SpGEMM("+sp.semiring+")",
			pbspgemm.Flops(sp.a, sp.b), time.Since(start)), nil
	}
}

// shardable reports whether sp may run on the shard coordinator: peers are
// configured, the product is unmasked arithmetic under the auto or pb
// algorithm (the coordinator pins PB — other kernels fold duplicates in a
// different order and would break cross-backend bit-identity), and the
// request carries no per-call overrides (threads and memory budget are
// engine-local knobs the remote peers would not see).
func (s *Server) shardable(sp *productSpec) bool {
	return s.coord != nil &&
		sp.semiring == "arithmetic" && sp.mask == nil &&
		(sp.algorithm == pbspgemm.Auto || sp.algorithm == pbspgemm.PB) &&
		sp.req.Threads == 0 && sp.req.MemoryBudgetBytes == 0
}

// productOf assembles a Product from a finished CSR result. Flops here is
// the symbolic multiplication count (the paths without a Result report it).
func productOf(c *pbspgemm.CSR, algorithm string, flops int64, elapsed time.Duration) *Product {
	p := &Product{C: c, Algorithm: algorithm, Flops: flops, Elapsed: elapsed, Bytes: csrBytes(c)}
	if nnz := c.NNZ(); nnz > 0 {
		p.CF = float64(flops) / float64(nnz)
	}
	return p
}

// boolCSR lowers a Boolean product to the float64 CSR interchange format
// (stored entries become 1.0), reusing the structure arrays.
func boolCSR(g *pbspgemm.Matrix[bool]) *pbspgemm.CSR {
	val := make([]float64, len(g.Val))
	for i := range val {
		val[i] = 1
	}
	return &pbspgemm.CSR{
		NumRows: g.NumRows, NumCols: g.NumCols,
		RowPtr: g.RowPtr, ColIdx: g.ColIdx, Val: val,
	}
}

// --- plan (dry run) ---

// planResponse is the POST /plan reply: the Auto planner's decision and the
// admission verdict the same request would receive right now, without
// running anything.
type planResponse struct {
	Chosen                  string  `json:"chosen"`
	Flops                   int64   `json:"flops"`
	EstNNZC                 int64   `json:"est_nnz_c"`
	CF                      float64 `json:"cf"`
	PredictedFootprintBytes int64   `json:"predicted_footprint_bytes"`
	PredictedOuterGFLOPS    float64 `json:"predicted_outer_gflops"`
	PredictedColumnGFLOPS   float64 `json:"predicted_column_gflops"`
	// Admissible reports whether the footprint fits the ceiling at all;
	// WouldQueue whether it would have to wait behind current in-flight work.
	Admissible bool `json:"admissible"`
	WouldQueue bool `json:"would_queue"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req multiplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	sp, status, err := s.resolveSpec(req)
	if err != nil {
		httpError(w, status, err)
		return
	}
	plan, err := s.eng.Plan(r.Context(), sp.a, sp.b, sp.engineOptions()...)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	adm := s.adm.Stats()
	resp := planResponse{
		Chosen: plan.Chosen.String(), Flops: plan.Flops, EstNNZC: plan.EstNNZC, CF: plan.CF,
		PredictedFootprintBytes: plan.PredictedFootprintBytes,
		PredictedOuterGFLOPS:    plan.PredictedOuterGFLOPS,
		PredictedColumnGFLOPS:   plan.PredictedColumnGFLOPS,
		Admissible:              adm.CeilingBytes <= 0 || plan.PredictedFootprintBytes <= adm.CeilingBytes,
	}
	resp.WouldQueue = resp.Admissible && adm.CeilingBytes > 0 &&
		adm.InflightBytes+plan.PredictedFootprintBytes > adm.CeilingBytes
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// --- metrics ---

// MetricsSnapshot is the GET /metrics document.
type MetricsSnapshot struct {
	Engine    EngineSnapshot `json:"engine"`
	Cache     CacheStats     `json:"cache"`
	Admission AdmissionStats `json:"admission"`
	Registry  RegistryStats  `json:"registry"`
	Coalesced int64          `json:"coalesced_requests"`
	// HandlerPanics counts panics contained by the route middleware (each
	// cost its own request a 500 and nothing else).
	HandlerPanics int64 `json:"handler_panics"`
	// Degraded counts products served through the budgeted tiled retry after
	// their full-speed footprint was inadmissible.
	Degraded int64                   `json:"degraded_requests"`
	Tenants  map[string]TenantStats  `json:"tenants"`
	Latency  map[string]LatencyStats `json:"latency"`
	// Shard is the coordinator's counters and per-peer breaker states;
	// absent on single-node deployments.
	Shard *shard.Status `json:"shard,omitempty"`
}

// EngineSnapshot is EngineMetrics with JSON-friendly algorithm names.
type EngineSnapshot struct {
	Calls       int64                       `json:"calls"`
	Failures    int64                       `json:"failures"`
	Panics      int64                       `json:"panics"`
	Flops       int64                       `json:"flops"`
	BytesMoved  int64                       `json:"bytes_moved"`
	NNZProduced int64                       `json:"nnz_produced"`
	BusyNs      int64                       `json:"busy_ns"`
	ByAlgorithm map[string]AlgorithmMetrics `json:"by_algorithm,omitempty"`
}

// AlgorithmMetrics mirrors pbspgemm.AlgorithmMetrics for JSON.
type AlgorithmMetrics struct {
	Calls       int64 `json:"calls"`
	Failures    int64 `json:"failures"`
	Flops       int64 `json:"flops"`
	NNZProduced int64 `json:"nnz_produced"`
	BusyNs      int64 `json:"busy_ns"`
	AutoChosen  int64 `json:"auto_chosen"`
}

// Metrics assembles the full serving snapshot (also used by tests directly,
// skipping HTTP).
func (s *Server) Metrics() MetricsSnapshot {
	em := s.eng.Metrics()
	es := EngineSnapshot{
		Calls: em.Calls, Failures: em.Failures, Panics: em.Panics, Flops: em.Flops,
		BytesMoved: em.BytesMoved, NNZProduced: em.NNZProduced, BusyNs: int64(em.Busy),
	}
	if len(em.ByAlgorithm) > 0 {
		es.ByAlgorithm = make(map[string]AlgorithmMetrics, len(em.ByAlgorithm))
		for alg, am := range em.ByAlgorithm {
			es.ByAlgorithm[alg.String()] = AlgorithmMetrics{
				Calls: am.Calls, Failures: am.Failures, Flops: am.Flops,
				NNZProduced: am.NNZProduced, BusyNs: int64(am.Busy), AutoChosen: am.AutoChosen,
			}
		}
	}
	snap := MetricsSnapshot{
		Engine:        es,
		Cache:         s.cache.Stats(),
		Admission:     s.adm.Stats(),
		Registry:      s.reg.Stats(),
		Coalesced:     s.flights.coalescedTotal(),
		HandlerPanics: s.panics.Load(),
		Degraded:      s.degraded.Load(),
		Tenants:       s.tenants.snapshot(),
		Latency:       s.lat.snapshot(),
	}
	if s.coord != nil {
		st := s.coord.Status()
		snap.Shard = &st
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Metrics())
}
