package serve

import (
	"fmt"
	"testing"

	"pbspgemm"
)

// testProduct makes a Product whose Bytes is set explicitly so eviction
// arithmetic is easy to pin.
func testProduct(bytes int64) *Product {
	return &Product{C: pbspgemm.NewER(16, 2, uint64(bytes)), Bytes: bytes}
}

func TestCacheHitMissEviction(t *testing.T) {
	c := NewCache(250) // fits two 100-byte products, not three
	if _, ok := c.Get("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	p1, p2, p3 := testProduct(100), testProduct(100), testProduct(100)
	c.Add("k1", p1)
	c.Add("k2", p2)
	if got, ok := c.Get("k1"); !ok || got != p1 {
		t.Fatal("k1 missing after insert")
	}
	// k1 is now most recently used; inserting k3 must evict k2.
	c.Add("k3", p3)
	if _, ok := c.Get("k2"); ok {
		t.Fatal("LRU entry k2 survived eviction")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("recently used k1 was evicted")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Fatal("fresh k3 missing")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 200 || st.Evictions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("hit/miss counters: %+v", st)
	}
}

func TestCacheRejectsOversized(t *testing.T) {
	c := NewCache(100)
	c.Add("big", testProduct(101))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized product was cached")
	}
	if st := c.Stats(); st.Rejected != 1 || st.Entries != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1)
	c.Add("k", testProduct(1))
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestCacheManyEvictionsKeepBudget(t *testing.T) {
	c := NewCache(1000)
	for i := 0; i < 100; i++ {
		c.Add(fmt.Sprintf("k%d", i), testProduct(100))
	}
	st := c.Stats()
	if st.Bytes > 1000 {
		t.Fatalf("cache over budget: %+v", st)
	}
	if st.Entries != 10 || st.Evictions != 90 {
		t.Fatalf("stats: %+v", st)
	}
}
