package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrShed is the errors.Is sentinel every *ShedError matches: the request
// was refused by admission control and should be retried later (HTTP maps
// it to 429 + Retry-After).
var ErrShed = errors.New("serve: load shed")

// ErrQueueTimeout is the errors.Is sentinel matched — in addition to
// ErrShed — by sheds whose Reason is ReasonQueueTimeout: the request waited
// the full MaxQueueWait without being admitted. It is deliberately distinct
// from the client's own cancellation, which Acquire surfaces as ctx.Err()
// (context.Canceled or context.DeadlineExceeded), never as a ShedError.
var ErrQueueTimeout = errors.New("serve: admission queue wait exceeded")

// The Reason values a ShedError carries.
const (
	ReasonFootprint    = "footprint exceeds ceiling"
	ReasonQueueFull    = "queue full"
	ReasonQueueTimeout = "queue wait exceeded"
)

// ShedError reports why admission refused a request.
type ShedError struct {
	// PredictedBytes is the planner's footprint estimate for the request.
	PredictedBytes int64
	// CeilingBytes is the configured memory ceiling.
	CeilingBytes int64
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
	// Reason is one of the Reason* constants.
	Reason string
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: shed (%s): predicted %d bytes, ceiling %d, retry after %s",
		e.Reason, e.PredictedBytes, e.CeilingBytes, e.RetryAfter)
}

// Is reports ErrShed as a match for errors.Is — and ErrQueueTimeout for
// queue-wait sheds specifically.
func (e *ShedError) Is(target error) bool {
	return target == ErrShed || (target == ErrQueueTimeout && e.Reason == ReasonQueueTimeout)
}

// Admission gates multiplications on predicted memory: the sum of admitted
// requests' planner-predicted footprints never exceeds the ceiling, so the
// server sheds load *before* the allocation that would OOM it, not after.
// Requests that do not fit right now wait (bounded queue, bounded wait, ctx
// honored) for in-flight work to release its share. Safe for concurrent use.
type Admission struct {
	mu       sync.Mutex
	ceiling  int64
	inflight int64
	waiters  int
	maxQueue int
	maxWait  time.Duration
	// wake is closed and replaced on every Release; queued waiters re-check
	// the ceiling on each broadcast (herd size is bounded by maxQueue).
	wake chan struct{}
	// jitter is the xorshift state behind retryAfter's backoff spreading.
	jitter uint64

	admitted, queued, shed int64
}

// NewAdmission creates a controller with the given ceiling (bytes; <= 0
// means unlimited, every request admitted immediately), queue bound and
// per-request maximum wait.
func NewAdmission(ceiling int64, maxQueue int, maxWait time.Duration) *Admission {
	return &Admission{
		ceiling: ceiling, maxQueue: maxQueue, maxWait: maxWait,
		wake: make(chan struct{}),
	}
}

// retryAfter estimates a client backoff from the current queue depth — one
// second per queued request ahead — plus up to +50% jitter so a burst of
// simultaneous sheds does not tell every client to come back at the same
// instant (the synchronized retry would just shed again). The jitter walk is
// a self-seeding xorshift under the mutex: deterministic per controller, no
// global rand contention. Clamped to [1s, maxWait].
func (a *Admission) retryAfter() time.Duration {
	d := time.Duration(1+a.waiters) * time.Second
	x := a.jitter
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	a.jitter = x
	if span := int64(d) / 2; span > 0 {
		d += time.Duration(int64(x % uint64(span)))
	}
	if d < time.Second {
		d = time.Second
	}
	if a.maxWait > 0 && d > a.maxWait {
		d = a.maxWait
	}
	return d
}

// Acquire blocks until predicted bytes fit under the ceiling, then reserves
// them; the caller must Release the same amount when its multiplication
// finishes (or fails). It returns a *ShedError when the request can never
// fit, the queue is full, or the wait bound expires — and ctx's error if the
// request is canceled while queued.
func (a *Admission) Acquire(ctx context.Context, predicted int64) error {
	if a.ceiling <= 0 {
		a.mu.Lock()
		a.inflight += predicted
		a.admitted++
		a.mu.Unlock()
		return nil
	}
	a.mu.Lock()
	if predicted > a.ceiling {
		a.shed++
		err := &ShedError{
			PredictedBytes: predicted, CeilingBytes: a.ceiling,
			RetryAfter: a.retryAfter(), Reason: ReasonFootprint,
		}
		a.mu.Unlock()
		return err
	}
	var timeout <-chan time.Time
	var timer *time.Timer
	queuedOnce := false
	for a.inflight+predicted > a.ceiling {
		if a.waiters >= a.maxQueue {
			a.shed++
			err := &ShedError{
				PredictedBytes: predicted, CeilingBytes: a.ceiling,
				RetryAfter: a.retryAfter(), Reason: ReasonQueueFull,
			}
			a.mu.Unlock()
			return err
		}
		if !queuedOnce {
			queuedOnce = true
			a.queued++
			if a.maxWait > 0 {
				timer = time.NewTimer(a.maxWait)
				timeout = timer.C
				defer timer.Stop()
			}
		}
		a.waiters++
		wake := a.wake
		a.mu.Unlock()
		select {
		case <-wake:
			a.mu.Lock()
			a.waiters--
		case <-ctx.Done():
			a.mu.Lock()
			a.waiters--
			a.mu.Unlock()
			return ctx.Err()
		case <-timeout:
			a.mu.Lock()
			a.waiters--
			a.shed++
			err := &ShedError{
				PredictedBytes: predicted, CeilingBytes: a.ceiling,
				RetryAfter: a.retryAfter(), Reason: ReasonQueueTimeout,
			}
			a.mu.Unlock()
			return err
		}
	}
	a.inflight += predicted
	a.admitted++
	a.mu.Unlock()
	return nil
}

// Release returns predicted bytes reserved by a successful Acquire and wakes
// every queued waiter to re-check the ceiling.
func (a *Admission) Release(predicted int64) {
	a.mu.Lock()
	a.inflight -= predicted
	close(a.wake)
	a.wake = make(chan struct{})
	a.mu.Unlock()
}

// Stats reports the admission counters and current reservation.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		CeilingBytes: a.ceiling, InflightBytes: a.inflight, Waiting: a.waiters,
		Admitted: a.admitted, Queued: a.queued, Shed: a.shed,
	}
}

// AdmissionStats is the controller's slice of the /metrics snapshot.
type AdmissionStats struct {
	CeilingBytes  int64 `json:"ceiling_bytes"`
	InflightBytes int64 `json:"inflight_bytes"`
	Waiting       int   `json:"waiting"`
	Admitted      int64 `json:"admitted"`
	// Queued counts requests that had to wait at least once before
	// admission (each request at most once, however many wakeups it saw).
	Queued int64 `json:"queued"`
	Shed   int64 `json:"shed"`
}
