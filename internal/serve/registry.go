package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pbspgemm"
	"pbspgemm/internal/mmio"
)

// ErrRegistryFull is the errors.Is sentinel for uploads rejected because the
// registry's memory budget is exhausted.
var ErrRegistryFull = errors.New("serve: matrix registry budget exhausted")

// ErrNotFound marks a matrix id that is not registered.
var ErrNotFound = errors.New("serve: matrix not found")

// MatrixInfo is the registry's metadata for one matrix.
type MatrixInfo struct {
	// ID is the content hash (hex SHA-256 of the canonical binary
	// serialization): identical uploads dedupe to one resident copy.
	ID string `json:"id"`
	// Name is the optional caller-supplied label of the first upload.
	Name     string    `json:"name,omitempty"`
	Rows     int32     `json:"rows"`
	Cols     int32     `json:"cols"`
	NNZ      int64     `json:"nnz"`
	Bytes    int64     `json:"bytes"`
	Uploaded time.Time `json:"uploaded"`
}

// Registry is the content-addressed matrix store: upload once, reuse the
// same in-memory CSR zero-copy across any number of multiply requests.
// Matrices are immutable once registered (kernels never mutate inputs), so
// Get hands out the shared pointer. Safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	budget int64
	bytes  int64
	m      map[string]*registryEntry
}

type registryEntry struct {
	mat  *pbspgemm.CSR
	info MatrixInfo
}

// NewRegistry creates a registry holding at most budget resident bytes
// (csrBytes accounting); budget <= 0 means unlimited.
func NewRegistry(budget int64) *Registry {
	return &Registry{budget: budget, m: make(map[string]*registryEntry)}
}

// HashMatrix returns the content id of m: hex SHA-256 over the canonical
// little-endian binary serialization (header + RowPtr + ColIdx + Val), so
// the id is stable across upload formats — a Matrix Market text upload and
// a binary upload of the same matrix get the same id.
func HashMatrix(m *pbspgemm.CSR) string {
	h := sha256.New()
	// WriteBinary's only error source is the writer, and a hash never fails.
	_ = mmio.WriteBinary(h, m)
	return hex.EncodeToString(h.Sum(nil))
}

// Put registers m under its content hash and returns its info. A re-upload
// of identical content is not stored again: existed reports the dedup and
// the original info (including its name and upload time) is returned, which
// is what amortizes uploads across clients sharing popular matrices.
func (r *Registry) Put(m *pbspgemm.CSR, name string) (info MatrixInfo, existed bool, err error) {
	id := HashMatrix(m)
	cost := csrBytes(m)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.m[id]; ok {
		return e.info, true, nil
	}
	if r.budget > 0 && r.bytes+cost > r.budget {
		return MatrixInfo{}, false, fmt.Errorf(
			"%w: %d bytes registered, %d requested, budget %d",
			ErrRegistryFull, r.bytes, cost, r.budget)
	}
	info = MatrixInfo{
		ID: id, Name: name,
		Rows: m.NumRows, Cols: m.NumCols, NNZ: m.NNZ(),
		Bytes: cost, Uploaded: time.Now().UTC(),
	}
	r.m[id] = &registryEntry{mat: m, info: info}
	r.bytes += cost
	return info, false, nil
}

// Get returns the registered matrix and its info. The matrix is shared and
// must be treated as read-only.
func (r *Registry) Get(id string) (*pbspgemm.CSR, MatrixInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[id]
	if !ok {
		return nil, MatrixInfo{}, false
	}
	return e.mat, e.info, true
}

// Delete removes a matrix, freeing its budget share. In-flight requests
// holding the pointer finish unaffected (the memory lives until they drop
// it); new requests see ErrNotFound.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[id]
	if !ok {
		return false
	}
	delete(r.m, id)
	r.bytes -= e.info.Bytes
	return true
}

// List returns all registered matrices, most recent first (ties broken by
// id so the order is deterministic).
func (r *Registry) List() []MatrixInfo {
	r.mu.RLock()
	out := make([]MatrixInfo, 0, len(r.m))
	for _, e := range r.m {
		out = append(out, e.info)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Uploaded.Equal(out[j].Uploaded) {
			return out[i].Uploaded.After(out[j].Uploaded)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Stats reports the registry's occupancy.
func (r *Registry) Stats() RegistryStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return RegistryStats{Matrices: len(r.m), Bytes: r.bytes, BudgetBytes: r.budget}
}

// RegistryStats is the registry's slice of the /metrics snapshot.
type RegistryStats struct {
	Matrices    int   `json:"matrices"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
}
