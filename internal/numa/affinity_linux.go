//go:build linux

package numa

import (
	"runtime"
	"syscall"
	"unsafe"
)

// affinityWords covers 1024 CPUs — the kernel's CONFIG_NR_CPUS ceiling on
// every distro this is likely to meet.
const affinityWords = 16

type cpuMask [affinityWords]uint64

func (m *cpuMask) set(cpu int) {
	if cpu >= 0 && cpu < affinityWords*64 {
		m[cpu/64] |= 1 << (cpu % 64)
	}
}

func getAffinity(mask *cpuMask) error {
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, unsafe.Sizeof(*mask), uintptr(unsafe.Pointer(mask)))
	if errno != 0 {
		return errno
	}
	return nil
}

func setAffinity(mask *cpuMask) error {
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, unsafe.Sizeof(*mask), uintptr(unsafe.Pointer(mask)))
	if errno != 0 {
		return errno
	}
	return nil
}

// PinThread locks the calling goroutine to its OS thread and restricts that
// thread to the given CPUs, returning a teardown that restores the previous
// mask and unlocks. Best-effort by design: a failed syscall (CPU ids not
// present on this host — e.g. an injected test machine — or a containerized
// cpuset) leaves the thread unpinned and returns a teardown that only
// undoes what succeeded. Callers never need to check for failure; an unpinned
// worker is merely unplaced, not incorrect.
func PinThread(cpus []int) (teardown func()) {
	if len(cpus) == 0 {
		return func() {}
	}
	runtime.LockOSThread()
	var old cpuMask
	if err := getAffinity(&old); err != nil {
		runtime.UnlockOSThread()
		return func() {}
	}
	var want cpuMask
	for _, c := range cpus {
		want.set(c)
	}
	if err := setAffinity(&want); err != nil {
		runtime.UnlockOSThread()
		return func() {}
	}
	return func() {
		_ = setAffinity(&old)
		runtime.UnlockOSThread()
	}
}
