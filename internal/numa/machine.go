package numa

import (
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Machine is a discovered (or injected) NUMA topology: which CPUs belong to
// which memory node, plus the bandwidth/latency model used for analytic
// predictions. The analytic Topology (Table VII) stays useful either way;
// Machine is what the engine needs to act — pin workers, order steal
// victims, first-touch bins.
type Machine struct {
	// Nodes[i] lists the CPU ids of NUMA node i, ascending.
	Nodes [][]int
	// Source records where the topology came from: "sysfs" for a live
	// /sys/devices/system/node parse, "fallback" for the Table VII model,
	// anything else for injected test machines. Thread pinning is attempted
	// only for sysfs and injected machines — the fallback's CPU ids are a
	// model of the paper's dual Skylake, not this host.
	Source string
	// Topo is the bandwidth/latency model paired with the machine; the
	// fallback uses the paper's Table VII numbers (PaperSkylake), which
	// MeasureLatencyNs can recalibrate against the host.
	Topo Topology
}

// NNodes returns the number of memory nodes (0 for a nil machine).
func (m *Machine) NNodes() int {
	if m == nil {
		return 0
	}
	return len(m.Nodes)
}

// NodeCPUs returns the CPU ids of one node (nil when out of range).
func (m *Machine) NodeCPUs(node int) []int {
	if m == nil || node < 0 || node >= len(m.Nodes) {
		return nil
	}
	return m.Nodes[node]
}

// AssignWorkers maps worker ids [0, threads) onto nodes in contiguous
// blocks — workers 0..t/2 on node 0, the rest on node 1, and so on — the
// same blocked split the engine uses for bins, so a worker's bins and its
// node coincide. Returns the per-worker node ids.
func (m *Machine) AssignWorkers(threads int) []int {
	nodes := m.NNodes()
	if nodes == 0 {
		nodes = 1
	}
	out := make([]int, threads)
	for w := 0; w < threads; w++ {
		out[w] = w * nodes / threads
	}
	return out
}

// VictimOrder builds per-worker steal orders from a worker→node assignment:
// same-node workers first (rotating from w+1 so same-node workers don't all
// hammer the same victim), then the remaining workers in id order. The
// returned nearLen[w] is the same-node prefix length — the inputs
// par.StealPolicy wants.
func VictimOrder(workerNodes []int) (victims [][]int, nearLen []int) {
	threads := len(workerNodes)
	victims = make([][]int, threads)
	nearLen = make([]int, threads)
	for w := 0; w < threads; w++ {
		order := make([]int, 0, threads-1)
		for i := 1; i < threads; i++ {
			v := (w + i) % threads
			if workerNodes[v] == workerNodes[w] {
				order = append(order, v)
			}
		}
		nearLen[w] = len(order)
		for i := 1; i < threads; i++ {
			v := (w + i) % threads
			if workerNodes[v] != workerNodes[w] {
				order = append(order, v)
			}
		}
		victims[w] = order
	}
	return victims, nearLen
}

// ParseCPUList parses the kernel's cpulist format ("0-23,48-71") into the
// sorted list of CPU ids. Empty (or all-whitespace) input is an empty node.
func ParseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var cpus []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(strings.TrimSpace(lo))
			if err != nil {
				return nil, fmt.Errorf("numa: bad cpulist range %q: %w", part, err)
			}
			b, err := strconv.Atoi(strings.TrimSpace(hi))
			if err != nil {
				return nil, fmt.Errorf("numa: bad cpulist range %q: %w", part, err)
			}
			if b < a {
				return nil, fmt.Errorf("numa: inverted cpulist range %q", part)
			}
			for c := a; c <= b; c++ {
				cpus = append(cpus, c)
			}
		} else {
			c, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("numa: bad cpulist entry %q: %w", part, err)
			}
			cpus = append(cpus, c)
		}
	}
	sort.Ints(cpus)
	return cpus, nil
}

// DiscoverFS parses a /sys/devices/system/node-shaped tree: entries named
// nodeN, each with a cpulist file. It returns the nodes sorted by id. Tests
// inject fstest.MapFS fixtures; Discover passes the live sysfs on Linux.
func DiscoverFS(fsys fs.FS) (*Machine, error) {
	entries, err := fs.ReadDir(fsys, ".")
	if err != nil {
		return nil, fmt.Errorf("numa: reading node dir: %w", err)
	}
	type node struct {
		id   int
		cpus []int
	}
	var nodes []node
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "node") {
			continue
		}
		id, err := strconv.Atoi(name[len("node"):])
		if err != nil {
			continue // node-something that isn't a node directory
		}
		raw, err := fs.ReadFile(fsys, name+"/cpulist")
		if err != nil {
			return nil, fmt.Errorf("numa: node %d: %w", id, err)
		}
		cpus, err := ParseCPUList(string(raw))
		if err != nil {
			return nil, fmt.Errorf("numa: node %d: %w", id, err)
		}
		if len(cpus) == 0 {
			continue // memory-only node: no CPUs to pin or steal near
		}
		nodes = append(nodes, node{id: id, cpus: cpus})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("numa: no CPU-bearing nodes found")
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	m := &Machine{Source: "sysfs", Topo: PaperSkylake}
	for _, n := range nodes {
		m.Nodes = append(m.Nodes, n.cpus)
	}
	return m, nil
}

// Fallback is the Table VII machine: two sockets of 24 cores with the
// paper's measured bandwidths and latencies. It exists so the analytic
// dual-socket predictions (PredictDual) always have a machine to reason
// about; its CPU ids describe the paper's Skylake 8160, not this host, so
// the engine never pins to them (Source == "fallback").
func Fallback() *Machine {
	per := PaperSkylake.SocketsPer
	n0 := make([]int, per)
	n1 := make([]int, per)
	for i := 0; i < per; i++ {
		n0[i] = i
		n1[i] = per + i
	}
	return &Machine{Nodes: [][]int{n0, n1}, Source: "fallback", Topo: PaperSkylake}
}

var (
	defaultOnce sync.Once
	defaultM    *Machine
)

// Default returns the host machine, discovered once per process: the live
// sysfs topology on Linux, the Table VII fallback elsewhere (or when sysfs
// is unreadable).
func Default() *Machine {
	defaultOnce.Do(func() { defaultM = Discover() })
	return defaultM
}
