//go:build !linux

package numa

// Discover has no portable topology source off Linux; the Table VII model
// machine stands in (never pinned to: Source == "fallback").
func Discover() *Machine {
	return Fallback()
}
