//go:build linux

package numa

import "os"

// sysNodeDir is the kernel's NUMA topology root.
const sysNodeDir = "/sys/devices/system/node"

// Discover parses the live sysfs NUMA topology; an unreadable or empty tree
// falls back to the Table VII model machine.
func Discover() *Machine {
	m, err := DiscoverFS(os.DirFS(sysNodeDir))
	if err != nil {
		return Fallback()
	}
	return m
}
