package numa

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTableVIIStructure(t *testing.T) {
	tv := PaperSkylake.TableVII()
	// Diagonal = local, off-diagonal = remote, symmetric.
	if tv[0][0].GBs != PaperSkylake.LocalGBs || tv[1][1].GBs != PaperSkylake.LocalGBs {
		t.Fatal("diagonal must be local bandwidth")
	}
	if tv[0][1].GBs != PaperSkylake.RemoteGBs || tv[1][0].GBs != PaperSkylake.RemoteGBs {
		t.Fatal("off-diagonal must be remote bandwidth")
	}
	if tv[0][1].Ns <= tv[0][0].Ns {
		t.Fatal("remote latency must exceed local latency")
	}
}

func TestEffectiveGBsBounds(t *testing.T) {
	topo := PaperSkylake
	if got := topo.EffectiveGBs(0); math.Abs(got-topo.LocalGBs) > 1e-9 {
		t.Fatalf("remoteFrac=0 => local bandwidth, got %v", got)
	}
	if got := topo.EffectiveGBs(1); math.Abs(got-topo.RemoteGBs) > 1e-9 {
		t.Fatalf("remoteFrac=1 => remote bandwidth, got %v", got)
	}
	// Clamping.
	if topo.EffectiveGBs(-1) != topo.EffectiveGBs(0) || topo.EffectiveGBs(2) != topo.EffectiveGBs(1) {
		t.Fatal("remoteFrac must clamp to [0,1]")
	}
	f := func(fracRaw uint8) bool {
		frac := float64(fracRaw) / 255
		e := topo.EffectiveGBs(frac)
		return e >= topo.RemoteGBs-1e-9 && e <= topo.LocalGBs+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveGBsMonotone(t *testing.T) {
	topo := PaperSkylake
	prev := topo.EffectiveGBs(0)
	for f := 0.1; f <= 1.0; f += 0.1 {
		cur := topo.EffectiveGBs(f)
		if cur > prev {
			t.Fatalf("effective bandwidth increased with remote fraction at %v", f)
		}
		prev = cur
	}
}

func TestPredictDual(t *testing.T) {
	topo := PaperSkylake
	// A phase that sustained exactly LocalGBs on one socket with no remote
	// traffic must be predicted at 2x speed on two sockets.
	bytes := int64(50.26e9) // 1 second at local bandwidth
	phases := []PhaseTraffic{{Name: "expand", Bytes: bytes, SingleTime: time.Second, RemoteFrac: 0}}
	got := topo.PredictDual(phases)
	if math.Abs(got.Seconds()-0.5) > 0.01 {
		t.Fatalf("perfect phase dual time = %v, want 0.5s", got)
	}
	// With 50% remote traffic the phase runs at 2*harmonic(50.26, 33.36) ≈
	// 2*40.1 GB/s, i.e. slower than the clean 2x.
	phases[0].RemoteFrac = 0.5
	slower := topo.PredictDual(phases)
	if slower <= got {
		t.Fatal("remote traffic must slow the prediction")
	}
	if slower.Seconds() >= 1.0 {
		t.Fatal("two sockets with remote traffic must still beat one socket here")
	}
}

func TestPredictDualDegenerate(t *testing.T) {
	topo := PaperSkylake
	// Zero-byte phases keep their measured time (e.g. symbolic).
	d := topo.PredictDual([]PhaseTraffic{{Name: "symbolic", Bytes: 0, SingleTime: time.Millisecond}})
	if d != time.Millisecond {
		t.Fatalf("zero-traffic phase time = %v, want 1ms", d)
	}
	if topo.PredictDual(nil) != 0 {
		t.Fatal("no phases must predict zero time")
	}
}

func TestPredictDualEfficiencyCap(t *testing.T) {
	topo := PaperSkylake
	// A phase that sustained only half the local bandwidth keeps its
	// inefficiency on two sockets: predicted dual time is bytes/(2*0.5*eff).
	bytes := int64(25.13e9) // one second at 50% efficiency
	phases := []PhaseTraffic{{Bytes: bytes, SingleTime: time.Second, RemoteFrac: 0}}
	got := topo.PredictDual(phases)
	if math.Abs(got.Seconds()-0.5) > 0.01 {
		t.Fatalf("inefficient phase dual time = %v, want 0.5s", got)
	}
}

func TestDefaultRemoteFractions(t *testing.T) {
	fr := DefaultRemoteFractions()
	if fr["symbolic"] != 0 {
		t.Fatal("symbolic phase should have no remote traffic")
	}
	for _, phase := range []string{"expand", "sort", "compress"} {
		if fr[phase] <= 0 || fr[phase] > 1 {
			t.Fatalf("%s remote fraction %v out of range", phase, fr[phase])
		}
	}
}

func TestColumnDualSpeedup(t *testing.T) {
	s := PaperSkylake.ColumnDualSpeedup()
	// Column algorithms should land close to 2x, and always below it.
	if s <= 1.5 || s >= 2.0 {
		t.Fatalf("column dual speedup = %v, want in (1.5, 2)", s)
	}
}

func TestMeasureLatencyNs(t *testing.T) {
	// Tiny footprint so the test is fast; we only assert plausibility
	// (sub-microsecond, non-zero) since the chase may hit cache.
	ns := MeasureLatencyNs(1<<20, 1)
	if ns <= 0 || ns > 1000 {
		t.Fatalf("latency %v ns implausible", ns)
	}
}

func TestRandomCycleIsSingleCycle(t *testing.T) {
	p := randomCycle(1024, 3)
	seen := make([]bool, len(p))
	idx := int32(0)
	for i := 0; i < len(p); i++ {
		if seen[idx] {
			t.Fatalf("cycle shorter than n: revisited %d at step %d", idx, i)
		}
		seen[idx] = true
		idx = p[idx]
	}
	if idx != 0 {
		t.Fatal("chase did not return to start after n hops")
	}
}
