package numa

import (
	"reflect"
	"testing"
	"testing/fstest"
)

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"", nil},
		{"0", []int{0}},
		{"0-3", []int{0, 1, 2, 3}},
		{"0-2,5,7-8", []int{0, 1, 2, 5, 7, 8}},
		{"0-23,48-71\n", append(seq(0, 23), seq(48, 71)...)},
		{" 4 , 2 ", []int{2, 4}}, // whitespace tolerated, output sorted
	}
	for _, c := range cases {
		got, err := ParseCPUList(c.in)
		if err != nil {
			t.Fatalf("ParseCPUList(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ParseCPUList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"x", "3-1", "1-x", "1,,y"} {
		if _, err := ParseCPUList(bad); err == nil {
			t.Fatalf("ParseCPUList(%q): expected error", bad)
		}
	}
}

func seq(lo, hi int) []int {
	s := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		s = append(s, i)
	}
	return s
}

// TestDiscoverFSDualSocket parses a dual-socket fixture tree shaped like the
// paper's Skylake 8160 (hyperthreads interleaved across sockets, as Linux
// numbers them).
func TestDiscoverFSDualSocket(t *testing.T) {
	fsys := fstest.MapFS{
		"node0/cpulist": {Data: []byte("0-23,48-71\n")},
		"node1/cpulist": {Data: []byte("24-47,72-95\n")},
		// Non-node entries the real sysfs dir also contains.
		"possible":     {Data: []byte("0-1\n")},
		"online":       {Data: []byte("0-1\n")},
		"has_cpu":      {Data: []byte("0-1\n")},
		"has_memory":   {Data: []byte("0-1\n")},
		"power/async":  {Data: []byte("n/a\n")},
		"uevent":       {Data: []byte("")},
		"node_dummy/x": {Data: []byte("")}, // "node" prefix, non-numeric suffix
	}
	m, err := DiscoverFS(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != "sysfs" {
		t.Fatalf("Source = %q, want sysfs", m.Source)
	}
	if m.NNodes() != 2 {
		t.Fatalf("NNodes = %d, want 2", m.NNodes())
	}
	want0 := append(seq(0, 23), seq(48, 71)...)
	want1 := append(seq(24, 47), seq(72, 95)...)
	if !reflect.DeepEqual(m.Nodes[0], want0) || !reflect.DeepEqual(m.Nodes[1], want1) {
		t.Fatalf("nodes = %v / %v", m.Nodes[0], m.Nodes[1])
	}
}

// TestDiscoverFSMemoryOnlyNode: CPU-less nodes (CXL/optane expanders) are
// dropped — there is nothing to pin or steal near on them.
func TestDiscoverFSMemoryOnlyNode(t *testing.T) {
	fsys := fstest.MapFS{
		"node0/cpulist": {Data: []byte("0-7\n")},
		"node1/cpulist": {Data: []byte("\n")},
		"node2/cpulist": {Data: []byte("8-15\n")},
	}
	m, err := DiscoverFS(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNodes() != 2 {
		t.Fatalf("NNodes = %d, want 2 (memory-only node dropped)", m.NNodes())
	}
	if !reflect.DeepEqual(m.Nodes[0], seq(0, 7)) || !reflect.DeepEqual(m.Nodes[1], seq(8, 15)) {
		t.Fatalf("nodes = %v", m.Nodes)
	}
}

func TestDiscoverFSSingleNode(t *testing.T) {
	fsys := fstest.MapFS{"node0/cpulist": {Data: []byte("0-95\n")}}
	m, err := DiscoverFS(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNodes() != 1 || len(m.Nodes[0]) != 96 {
		t.Fatalf("got %d nodes, %d cpus", m.NNodes(), len(m.Nodes[0]))
	}
}

func TestDiscoverFSEmpty(t *testing.T) {
	if _, err := DiscoverFS(fstest.MapFS{"online": {Data: []byte("0\n")}}); err == nil {
		t.Fatal("expected error on a tree with no nodes")
	}
}

// TestDiscover: the live host must always produce a machine — sysfs on
// Linux, the Table VII fallback elsewhere — with at least one CPU.
func TestDiscover(t *testing.T) {
	m := Discover()
	if m.NNodes() < 1 || len(m.Nodes[0]) == 0 {
		t.Fatalf("Discover: %+v", m)
	}
	if m != Default() {
		// Default caches its own Discover result; both must be usable.
		if Default().NNodes() < 1 {
			t.Fatal("Default returned an empty machine")
		}
	}
}

func TestFallbackIsTableVII(t *testing.T) {
	m := Fallback()
	if m.Source != "fallback" || m.NNodes() != 2 {
		t.Fatalf("fallback: %+v", m)
	}
	if len(m.Nodes[0]) != PaperSkylake.SocketsPer || len(m.Nodes[1]) != PaperSkylake.SocketsPer {
		t.Fatalf("fallback cores per socket = %d/%d, want %d",
			len(m.Nodes[0]), len(m.Nodes[1]), PaperSkylake.SocketsPer)
	}
	if m.Topo != PaperSkylake {
		t.Fatalf("fallback topology = %+v", m.Topo)
	}
}

func TestAssignWorkers(t *testing.T) {
	m := &Machine{Nodes: [][]int{{0, 1}, {2, 3}}, Source: "test"}
	got := m.AssignWorkers(4)
	if !reflect.DeepEqual(got, []int{0, 0, 1, 1}) {
		t.Fatalf("AssignWorkers(4) = %v", got)
	}
	got = m.AssignWorkers(3)
	if !reflect.DeepEqual(got, []int{0, 0, 1}) {
		t.Fatalf("AssignWorkers(3) = %v", got)
	}
	// One node: everything on node 0.
	one := &Machine{Nodes: [][]int{{0}}, Source: "test"}
	if got := one.AssignWorkers(2); !reflect.DeepEqual(got, []int{0, 0}) {
		t.Fatalf("single-node AssignWorkers = %v", got)
	}
}

func TestVictimOrder(t *testing.T) {
	// 4 workers, 2 nodes: 0,1 on node 0; 2,3 on node 1.
	victims, nearLen := VictimOrder([]int{0, 0, 1, 1})
	want := [][]int{
		{1, 2, 3},
		{0, 2, 3},
		{3, 0, 1},
		{2, 0, 1},
	}
	if !reflect.DeepEqual(victims, want) {
		t.Fatalf("victims = %v, want %v", victims, want)
	}
	if !reflect.DeepEqual(nearLen, []int{1, 1, 1, 1}) {
		t.Fatalf("nearLen = %v", nearLen)
	}
	// Every worker's list covers everyone else exactly once.
	for w, vs := range victims {
		seen := map[int]bool{w: true}
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("worker %d victim %d repeated", w, v)
			}
			seen[v] = true
		}
		if len(seen) != 4 {
			t.Fatalf("worker %d victims incomplete: %v", w, vs)
		}
	}
}

func TestPinThreadBestEffort(t *testing.T) {
	// CPU 0 exists everywhere; pinning to it (or no-op off Linux) must
	// round-trip without panicking, and teardown must restore.
	td := PinThread([]int{0})
	td()
	// Nonexistent CPUs: best-effort, never an error surface.
	td = PinThread([]int{100000})
	td()
	PinThread(nil)()
}
