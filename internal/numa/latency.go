package numa

import (
	"time"

	"pbspgemm/internal/gen"
)

// MeasureLatencyNs measures the host's memory access latency with a
// pointer-chase over a random permutation that defeats prefetching — the
// same methodology as Intel's Memory Latency Checker that the paper used for
// Table VII. bytes is the chase footprint (should exceed LLC; default
// 256 MiB when <= 0). It fills the local (same-socket) cell of the simulated
// topology with a real measurement.
func MeasureLatencyNs(bytes int64, seed uint64) float64 {
	if bytes <= 0 {
		bytes = 256 << 20
	}
	n := int(bytes / 8)
	if n < 1024 {
		n = 1024
	}
	next := make([]int64, n)
	// Sattolo's algorithm builds a single random cycle covering all slots,
	// guaranteeing the chase visits every element with no short cycles.
	perm := randomCycle(n, seed)
	for i := 0; i < n; i++ {
		next[i] = int64(perm[i])
	}

	// Warm the page tables with one full traversal.
	idx := int64(0)
	for i := 0; i < n; i++ {
		idx = next[idx]
	}

	const hops = 1 << 22
	start := time.Now()
	for i := 0; i < hops; i++ {
		idx = next[idx]
	}
	elapsed := time.Since(start)
	sink = idx // defeat dead-code elimination
	return float64(elapsed.Nanoseconds()) / float64(hops)
}

var sink int64

// randomCycle returns a permutation that is one cycle of length n
// (Sattolo's algorithm) using the repo's deterministic PRNG.
func randomCycle(n int, seed uint64) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	r := gen.NewRNG(seed)
	for i := n - 1; i > 0; i-- {
		j := int(r.Intn(int32(i))) // j in [0, i)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
