//go:build !linux

package numa

// PinThread is a no-op off Linux: there is no portable thread-affinity API,
// and an unpinned worker is merely unplaced, not incorrect.
func PinThread(cpus []int) (teardown func()) {
	return func() {}
}
