// Package numa models the dual-socket NUMA behaviour the paper analyzes in
// Section V-D (Fig. 14, Table VII). Go exposes no NUMA placement control and
// this reproduction may run on a single memory domain, so the second socket
// is simulated analytically: each socket has local and remote bandwidth and
// latency, and phase times are predicted from measured single-socket traffic
// plus a per-phase remote-access fraction. This reproduces the paper's
// finding that PB-SpGEMM's advantage shrinks on two sockets — its sort and
// compress phases consume bins that the expand phase may have placed on the
// other socket, so they run at the harmonic-mean bandwidth, while column
// algorithms keep their working column in cache and barely notice.
// See DESIGN.md §4 (substitution 3).
package numa

import "time"

// Topology describes a two-socket machine's memory system. The defaults are
// the paper's Table VII measurements of the dual Skylake 8160.
type Topology struct {
	LocalGBs   float64 // same-socket bandwidth, GB/s
	RemoteGBs  float64 // cross-socket bandwidth, GB/s
	LocalNs    float64 // same-socket idle latency, ns
	RemoteNs   float64 // cross-socket idle latency, ns
	SocketsPer int     // cores per socket (informational)
}

// PaperSkylake is Table VII: 50.26/33.36 GB/s and 88.1/147.4 ns (averaged
// over the symmetric off-diagonal entries).
var PaperSkylake = Topology{
	LocalGBs: 50.26, RemoteGBs: 33.36,
	LocalNs: 88.1, RemoteNs: 147.4,
	SocketsPer: 24,
}

// TableVII renders the 2×2 socket matrix of (bandwidth, latency) pairs the
// paper reports; entry [i][j] is socket i accessing memory on socket j.
func (t Topology) TableVII() [2][2]Cell {
	local := Cell{GBs: t.LocalGBs, Ns: t.LocalNs}
	remote := Cell{GBs: t.RemoteGBs, Ns: t.RemoteNs}
	return [2][2]Cell{
		{local, remote},
		{remote, local},
	}
}

// Cell is one entry of the Table VII matrix.
type Cell struct {
	GBs float64
	Ns  float64
}

// EffectiveGBs returns the bandwidth a phase sustains when fraction
// remoteFrac of its traffic crosses the socket interconnect, modeled as the
// weighted harmonic mean of local and remote bandwidth (traffic-serialized
// model: total time = localBytes/localBW + remoteBytes/remoteBW).
func (t Topology) EffectiveGBs(remoteFrac float64) float64 {
	if remoteFrac < 0 {
		remoteFrac = 0
	}
	if remoteFrac > 1 {
		remoteFrac = 1
	}
	inv := (1-remoteFrac)/t.LocalGBs + remoteFrac/t.RemoteGBs
	if inv <= 0 {
		return 0
	}
	return 1 / inv
}

// PhaseTraffic is the measured single-socket byte volume and time of one
// PB-SpGEMM phase, plus the fraction of its traffic that becomes remote when
// the computation spreads over two sockets.
type PhaseTraffic struct {
	Name       string
	Bytes      int64
	SingleTime time.Duration
	RemoteFrac float64
}

// DefaultRemoteFractions returns the remote-access fractions Section V-D
// implies for PB-SpGEMM when bins are distributed across sockets: the expand
// phase writes mostly to locally-allocated bins interleaved 50/50 across
// sockets but through full-cache-line flushes (~0.5 remote), and the
// sort/compress phases pick bins dynamically, so on average half the bins a
// thread touches live on the other socket (~0.5 remote).
func DefaultRemoteFractions() map[string]float64 {
	return map[string]float64{
		"symbolic": 0.0,
		"expand":   0.5,
		"sort":     0.5,
		"compress": 0.5,
	}
}

// PredictDual predicts the dual-socket runtime of a phase set. For each
// phase, single-socket sustained bandwidth is scaled: two sockets double raw
// bandwidth (2×local), but remote traffic caps it at EffectiveGBs. The
// returned duration is the sum of predicted phase times.
//
// predictedPhase = bytes / min(2·singleGBs_effective_cap, 2·EffectiveGBs(f))
// where the single-socket sustained bandwidth also bounds per-socket
// efficiency: if the phase only sustained s GB/s of the topology's LocalGBs,
// the same efficiency ratio applies on two sockets.
func (t Topology) PredictDual(phases []PhaseTraffic) time.Duration {
	var total time.Duration
	for _, p := range phases {
		if p.Bytes == 0 || p.SingleTime <= 0 {
			total += p.SingleTime
			continue
		}
		singleGBs := float64(p.Bytes) / p.SingleTime.Seconds() / 1e9
		eff := singleGBs / t.LocalGBs // phase efficiency vs. machine peak
		if eff > 1 {
			eff = 1
		}
		dualGBs := 2 * eff * t.EffectiveGBs(p.RemoteFrac)
		if dualGBs <= 0 {
			total += p.SingleTime
			continue
		}
		total += time.Duration(float64(p.Bytes) / dualGBs / 1e9 * float64(time.Second))
	}
	return total
}

// ColumnDualSpeedup is the paper's observation for column SpGEMM on two
// sockets: the active column stays in cache, so the algorithms scale with
// cores and are "not significantly affected by cross-socket bandwidth". We
// model their dual-socket performance as a plain 2× with a small NUMA
// penalty on the streamed B and C traffic.
func (t Topology) ColumnDualSpeedup() float64 {
	// B and C streams are ~1/3 of column SpGEMM traffic in the Eq. 3 model
	// (flop + nnzB + nnzC with cf≈1); give that share the remote penalty.
	streamShare := 1.0 / 3.0
	penalty := streamShare*t.RemoteGBs/t.LocalGBs + (1 - streamShare)
	return 2 * penalty
}
