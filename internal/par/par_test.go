package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForRangesCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1000} {
		for _, threads := range []int{1, 2, 7, 64} {
			hits := make([]int32, n)
			ForRanges(n, threads, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d threads=%d: index %d hit %d times", n, threads, i, h)
				}
			}
		}
	}
}

func TestForEachDynamicCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 3, 257} {
		for _, threads := range []int{1, 4, 32} {
			hits := make([]int32, n)
			ForEachDynamic(n, threads, func(_, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d threads=%d: index %d hit %d times", n, threads, i, h)
				}
			}
		}
	}
}

func TestForChunksDynamicCoversAll(t *testing.T) {
	n := 1000
	for _, chunk := range []int{0, 1, 7, 100, 5000} {
		hits := make([]int32, n)
		ForChunksDynamic(n, 8, chunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("chunk=%d: index %d hit %d times", chunk, i, h)
			}
		}
	}
}

func TestBalancedBoundariesPartition(t *testing.T) {
	f := func(weightsRaw []uint16, partsSel uint8) bool {
		weights := make([]int64, len(weightsRaw))
		for i, w := range weightsRaw {
			weights[i] = int64(w)
		}
		parts := int(partsSel%16) + 1
		b := BalancedBoundaries(weights, parts)
		if len(b) != parts+1 || b[0] != 0 || b[parts] != len(weights) {
			return false
		}
		for p := 0; p < parts; p++ {
			if b[p] > b[p+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedBoundariesBalance(t *testing.T) {
	// Uniform weights must split into near-equal ranges.
	weights := make([]int64, 1000)
	for i := range weights {
		weights[i] = 1
	}
	b := BalancedBoundaries(weights, 4)
	for p := 0; p < 4; p++ {
		size := b[p+1] - b[p]
		if size < 200 || size > 300 {
			t.Fatalf("part %d has %d elements, want ~250", p, size)
		}
	}
	// One heavy element: its part should be small in count.
	weights[0] = 1_000_000
	b = BalancedBoundaries(weights, 4)
	if b[1] != 1 {
		t.Fatalf("heavy first element should own part 0 alone, boundary = %d", b[1])
	}
}

func TestBalancedBoundariesEdgeCases(t *testing.T) {
	if b := BalancedBoundaries(nil, 4); b[4] != 0 {
		t.Fatal("empty weights mishandled")
	}
	if b := BalancedBoundaries([]int64{5}, 1); b[0] != 0 || b[1] != 1 {
		t.Fatal("single part mishandled")
	}
	// All-zero weights must still produce a valid partition.
	b := BalancedBoundaries(make([]int64, 10), 3)
	if b[0] != 0 || b[3] != 10 {
		t.Fatal("zero weights mishandled")
	}
}

func TestPrefixSum(t *testing.T) {
	counts := []int64{3, 0, 5, 2}
	out := make([]int64, 5)
	total := PrefixSum(counts, out)
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	want := []int64{0, 3, 3, 8, 10}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestParallelRunAllWorkersRun(t *testing.T) {
	var count atomic.Int32
	ParallelRun(8, func(worker int) {
		if worker < 0 || worker >= 8 {
			t.Errorf("worker id %d out of range", worker)
		}
		count.Add(1)
	})
	if count.Load() != 8 {
		t.Fatalf("ran %d workers, want 8", count.Load())
	}
}

func TestDefaultThreads(t *testing.T) {
	if DefaultThreads(5) != 5 {
		t.Fatal("explicit thread count not honoured")
	}
	if DefaultThreads(0) < 1 || DefaultThreads(-1) < 1 {
		t.Fatal("default thread count must be positive")
	}
}

// TestPrefixSumParallelMatchesSequential: identical output and total at any
// thread count, across the fallback cutoff.
func TestPrefixSumParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 100, prefixSumParallelCutoff - 1, prefixSumParallelCutoff, 1 << 17} {
		counts := make([]int64, n)
		for i := range counts {
			counts[i] = int64(i%17) - 3
		}
		want := make([]int64, n+1)
		wantTotal := PrefixSum(counts, want)
		for _, threads := range []int{1, 2, 3, 8} {
			got := make([]int64, n+1)
			gotTotal := PrefixSumParallel(counts, got, threads)
			if gotTotal != wantTotal {
				t.Fatalf("n=%d threads=%d: total %d, want %d", n, threads, gotTotal, wantTotal)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d threads=%d: out[%d] = %d, want %d", n, threads, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWorkStealRunsEveryTaskOnce: seeds and spawned tasks each execute
// exactly once, at every thread count, including recursive spawning.
func TestWorkStealRunsEveryTaskOnce(t *testing.T) {
	const seedsN = 40
	const depth = 3 // each task spawns two children until depth exhausted
	type task struct {
		id    int
		depth int
	}
	// Total tasks: seedsN * (2^(depth+1) - 1).
	total := seedsN * ((1 << (depth + 1)) - 1)
	for _, threads := range []int{1, 2, 4, 8} {
		var ran sync.Map
		var count atomic.Int64
		seeds := make([]task, seedsN)
		for i := range seeds {
			seeds[i] = task{id: i, depth: depth}
		}
		nextID := atomic.Int64{}
		nextID.Store(seedsN)
		WorkSteal(threads, seeds, func(worker int, tk task, spawn func(task)) {
			if _, dup := ran.LoadOrStore(tk.id, true); dup {
				t.Errorf("threads=%d: task %d ran twice", threads, tk.id)
			}
			count.Add(1)
			if tk.depth > 0 {
				for c := 0; c < 2; c++ {
					spawn(task{id: int(nextID.Add(1)) - 1, depth: tk.depth - 1})
				}
			}
		})
		if got := count.Load(); got != int64(total) {
			t.Fatalf("threads=%d: ran %d tasks, want %d", threads, got, total)
		}
	}
}

// TestWorkStealEmpty: no seeds, no calls, no hang.
func TestWorkStealEmpty(t *testing.T) {
	WorkSteal(4, nil, func(int, int, func(int)) { t.Fatal("fn called with no seeds") })
}

// TestWorkStealDrainsSpawnsFromSlowWorker: one seed spawns many tasks; with
// several workers all of them must still complete (stealing drains the
// spawner's deque).
func TestWorkStealDrainsSpawnsFromSlowWorker(t *testing.T) {
	var count atomic.Int64
	WorkSteal(4, []int{0}, func(worker, task int, spawn func(int)) {
		count.Add(1)
		if task == 0 {
			for i := 1; i <= 100; i++ {
				spawn(i)
			}
		}
	})
	if got := count.Load(); got != 101 {
		t.Fatalf("ran %d tasks, want 101", got)
	}
}
