package par

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkStealPolicyNilMatchesWorkSteal: a nil policy must behave exactly
// like WorkSteal (it is WorkSteal).
func TestWorkStealPolicyNilMatchesWorkSteal(t *testing.T) {
	var sum atomic.Int64
	seeds := make([]int, 100)
	for i := range seeds {
		seeds[i] = i
	}
	WorkStealPolicy(4, seeds, nil, func(_ int, task int, spawn func(int)) {
		sum.Add(int64(task))
		if task < 10 {
			spawn(task + 1000)
		}
	})
	want := int64(100*99/2) + 10*1000 + 10*9/2
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestStealCountersConserve: owned + stolen task counts must equal the total
// number of tasks executed, at any thread count.
func TestStealCountersConserve(t *testing.T) {
	for _, threads := range []int{1, 2, 8} {
		var pol StealPolicy
		pol.EnsureCounters(threads)
		seeds := make([]int, 200)
		var ran atomic.Int64
		WorkStealPolicy(threads, seeds, &pol, func(_ int, task int, spawn func(int)) {
			ran.Add(1)
			if task == 0 {
				// nothing
			}
		})
		owned, stolen, near := pol.Totals()
		if owned+stolen != ran.Load() || ran.Load() != 200 {
			t.Fatalf("threads=%d: owned %d + stolen %d != ran %d", threads, owned, stolen, ran.Load())
		}
		if near > stolen {
			t.Fatalf("threads=%d: nearStolen %d > stolen %d", threads, near, stolen)
		}
		if threads == 1 && (stolen != 0 || owned != 200) {
			t.Fatalf("threads=1: owned %d stolen %d, want 200/0", owned, stolen)
		}
	}
}

// TestNearStealsPreferred: with an injected two-node topology and the
// "victims" workers parked, the one active thief must drain its NUMA-near
// victim's deque before touching the far one — the victim list is scanned in
// order on every steal, so a far steal can only ever happen once the near
// deque is empty.
func TestNearStealsPreferred(t *testing.T) {
	const perDeque = 10
	// 3 workers: 0 and 1 on node A, 2 on node B. Worker 1 is the thief;
	// its near victim is 0, far victim is 2.
	pol := &StealPolicy{
		Victims: [][]int{{1, 2}, {0, 2}, {0, 1}},
		NearLen: []int{1, 1, 0},
		Place:   make([]int, 2*perDeque),
		Setup: func(w int) func() {
			if w != 1 {
				time.Sleep(200 * time.Millisecond) // park the deque owners
			}
			return nil
		},
	}
	for i := 0; i < perDeque; i++ {
		pol.Place[i] = 0
		pol.Place[perDeque+i] = 2
	}
	pol.EnsureCounters(3)

	var order []int // deque each of worker 1's tasks came from, in run order
	seeds := make([]int, 2*perDeque)
	for i := range seeds {
		if i < perDeque {
			seeds[i] = 0
		} else {
			seeds[i] = 2
		}
	}
	WorkStealPolicy(3, seeds, pol, func(w int, task int, _ func(int)) {
		if w == 1 {
			order = append(order, task)
		}
	})

	if pol.Stolen[1] == 0 {
		t.Fatal("thief stole nothing; owners were parked 200ms")
	}
	// Structural invariant: worker 1 tries victim 0 before victim 2 on
	// every steal, so its first far steal can only happen after deque 0 is
	// empty — all of worker 1's near steals precede all of its far ones.
	seenFar := false
	for _, src := range order {
		if src == 2 {
			seenFar = true
		} else if seenFar {
			t.Fatalf("near steal after far steal: order %v", order)
		}
	}
	if pol.NearStolen[1]+0 < 1 {
		t.Fatalf("no near steals recorded: %+v", pol)
	}
	if pol.NearStolen[1] > pol.Stolen[1] {
		t.Fatalf("near %d > stolen %d", pol.NearStolen[1], pol.Stolen[1])
	}
}

// TestStealPolicySetupTeardown: Setup runs once per worker, teardowns run on
// exit, including on the sequential path.
func TestStealPolicySetupTeardown(t *testing.T) {
	for _, threads := range []int{1, 4} {
		var setups, teardowns atomic.Int64
		pol := &StealPolicy{
			Setup: func(w int) func() {
				setups.Add(1)
				return func() { teardowns.Add(1) }
			},
		}
		WorkStealPolicy(threads, make([]int, 50), pol, func(int, int, func(int)) {})
		if got := setups.Load(); got != int64(threads) {
			t.Fatalf("threads=%d: %d setups", threads, got)
		}
		if setups.Load() != teardowns.Load() {
			t.Fatalf("threads=%d: %d setups, %d teardowns", threads, setups.Load(), teardowns.Load())
		}
	}
}

// TestStealPolicyPlace: explicit placement must land seeds on the requested
// deques (observed through owners' Owned counters with everyone else idle).
func TestStealPolicyPlace(t *testing.T) {
	pol := &StealPolicy{Place: []int{2, 2, 2, 2}}
	pol.EnsureCounters(3)
	// Workers 0 and 1 have empty deques and must steal everything from 2 —
	// or 2 runs them itself; either way nothing is "owned" by 0 or 1.
	WorkStealPolicy(3, make([]int, 4), pol, func(int, int, func(int)) {
		time.Sleep(time.Millisecond)
	})
	if pol.Owned[0] != 0 || pol.Owned[1] != 0 {
		t.Fatalf("workers 0/1 owned tasks they were never given: %v", pol.Owned)
	}
	owned, stolen, _ := pol.Totals()
	if owned+stolen != 4 {
		t.Fatalf("conservation: %d + %d != 4", owned, stolen)
	}
}
