package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// StealPolicy customizes WorkStealPolicy's scheduling and exposes its
// per-worker counters. The zero value (or a nil policy) reproduces WorkSteal
// exactly: round-robin victim order, no counters, no per-worker setup.
//
// The NUMA-aware sort phase injects victim orders that list same-node
// workers first (numa.VictimOrder), so a worker running out of local tasks
// raids deques whose bins were first-touched on its own memory node before
// crossing the socket interconnect.
type StealPolicy struct {
	// Victims[w] is worker w's steal order — the other workers' ids, tried
	// first to last each time w's own deque is empty. nil (or short) falls
	// back to round-robin from w+1.
	Victims [][]int
	// NearLen[w] is how many leading entries of Victims[w] are "near" (same
	// NUMA node); steals from them count into NearStolen.
	NearLen []int
	// Place[i], when non-nil, is the deque seed i starts on (otherwise seeds
	// spread round-robin). Tests use it to stage deterministic layouts.
	Place []int
	// Setup, when non-nil, runs at each worker goroutine's start (e.g. to
	// pin the OS thread to the worker's NUMA node); the returned teardown,
	// if non-nil, runs when the worker exits.
	Setup func(worker int) (teardown func())

	// Per-worker counters, written with plain stores (slot w is touched only
	// by worker w) and valid after WorkStealPolicy returns. Nil slices skip
	// counting. Owned counts tasks popped from the worker's own deque,
	// Stolen tasks taken from a victim, NearStolen the subset taken from the
	// first NearLen entries of the victim list.
	Owned, Stolen, NearStolen []int64
}

// EnsureCounters sizes (and zeroes) the counter slices for a run with the
// given worker count, reusing capacity grow-only.
func (p *StealPolicy) EnsureCounters(threads int) {
	grow := func(s *[]int64) {
		if cap(*s) < threads {
			*s = make([]int64, threads)
		}
		*s = (*s)[:threads]
		for i := range *s {
			(*s)[i] = 0
		}
	}
	grow(&p.Owned)
	grow(&p.Stolen)
	grow(&p.NearStolen)
}

// Totals sums the per-worker counters.
func (p *StealPolicy) Totals() (owned, stolen, nearStolen int64) {
	for _, v := range p.Owned {
		owned += v
	}
	for _, v := range p.Stolen {
		stolen += v
	}
	for _, v := range p.NearStolen {
		nearStolen += v
	}
	return
}

// WorkStealPolicy is WorkSteal with a scheduling policy: custom victim
// orders, per-worker setup hooks and ownership/steal counters. A nil policy
// is identical to WorkSteal. See WorkSteal for the scheduling contract.
func WorkStealPolicy[T any](threads int, seeds []T, pol *StealPolicy, fn func(worker int, task T, spawn func(T))) {
	threads = DefaultThreads(threads)
	if len(seeds) == 0 {
		return
	}
	if threads <= 1 {
		protect(0, func() {
			if pol != nil && pol.Setup != nil {
				if td := pol.Setup(0); td != nil {
					defer td()
				}
			}
			stack := append(make([]T, 0, 2*len(seeds)), seeds...)
			spawn := func(t T) { stack = append(stack, t) }
			for len(stack) > 0 {
				t := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if pol != nil && pol.Owned != nil {
					pol.Owned[0]++
				}
				fn(0, t, spawn)
			}
		})
		return
	}
	deques := make([]wsDeque[T], threads)
	for i, s := range seeds {
		w := i % threads
		if pol != nil && i < len(pol.Place) {
			w = pol.Place[i] % threads
		}
		deques[w].buf = append(deques[w].buf, s)
	}
	var g guard
	var pending atomic.Int64
	pending.Store(int64(len(seeds)))
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(t int) {
			defer wg.Done()
			g.run(t, func() {
				if pol != nil && pol.Setup != nil {
					if td := pol.Setup(t); td != nil {
						defer td()
					}
				}
				var victims []int
				nearLen := 0
				if pol != nil && t < len(pol.Victims) && pol.Victims[t] != nil {
					victims = pol.Victims[t]
					if t < len(pol.NearLen) {
						nearLen = pol.NearLen[t]
					}
				}
				self := &deques[t]
				spawn := func(nt T) {
					pending.Add(1)
					self.push(nt)
				}
				idle := 0
				for {
					// A panicking task never decrements pending, so without
					// this check the siblings would spin in the idle loop
					// forever waiting for a count that cannot reach zero.
					if g.stop() {
						return
					}
					task, ok := self.popTail()
					stoleFrom := -1
					if !ok {
						if victims != nil {
							for i := 0; !ok && i < len(victims); i++ {
								if task, ok = deques[victims[i]].stealHead(); ok {
									stoleFrom = i
								}
							}
						} else {
							for i := 1; !ok && i < threads; i++ {
								if task, ok = deques[(t+i)%threads].stealHead(); ok {
									stoleFrom = i
								}
							}
						}
					}
					if ok {
						idle = 0
						if pol != nil && pol.Owned != nil {
							if stoleFrom < 0 {
								pol.Owned[t]++
							} else {
								pol.Stolen[t]++
								if victims != nil && stoleFrom < nearLen {
									pol.NearStolen[t]++
								}
							}
						}
						fn(t, task, spawn)
						if pending.Add(-1) == 0 {
							return
						}
						continue
					}
					if pending.Load() == 0 {
						return
					}
					// Tasks are in flight on other workers and may yet spawn.
					// Yield first (a spawn usually lands within a few rounds),
					// then back off to sleeping so an idle tail behind one long
					// task doesn't burn the other cores' cycles hammering the
					// deque mutexes.
					if idle++; idle < 64 {
						runtime.Gosched()
					} else {
						time.Sleep(20 * time.Microsecond)
					}
				}
			})
		}(t)
	}
	wg.Wait()
	g.rethrow()
}
