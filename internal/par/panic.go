package par

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is what a worker panic becomes: the pool primitives in this
// package recover panics inside their workers, abort the siblings, and
// re-raise the first capture as a typed *PanicError on the calling goroutine
// once every worker has drained. Layers above (internal/core, internal/kernel)
// convert it into an ordinary error on Multiply, so one out-of-range index in
// one worker of one request can never take down a process that serves many.
type PanicError struct {
	// Worker is the id of the worker goroutine that panicked, or -1 when the
	// panic happened on the calling goroutine (sequential fallbacks, setup).
	Worker int
	// Phase names the pipeline phase that hosted the panic ("expand",
	// "sort", ...). Filled by the first layer that knows it; empty from the
	// raw primitives.
	Phase string
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack, captured at recover time —
	// the calling goroutine's own stack no longer contains the fault.
	Stack []byte
}

func (e *PanicError) Error() string {
	phase := e.Phase
	if phase == "" {
		phase = "parallel section"
	}
	return fmt.Sprintf("par: worker %d panicked in %s: %v", e.Worker, phase, e.Value)
}

// Unwrap exposes panic(err) values to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// AsPanicError converts a recover() value into a *PanicError, capturing the
// current stack. A value that already is one passes through (gaining phase if
// it had none); nil returns nil, so the helper can be called unconditionally
// on recover()'s result.
func AsPanicError(v any, worker int, phase string) *PanicError {
	if v == nil {
		return nil
	}
	if pe, ok := v.(*PanicError); ok {
		if pe.Phase == "" {
			pe.Phase = phase
		}
		return pe
	}
	return &PanicError{Worker: worker, Phase: phase, Value: v, Stack: debug.Stack()}
}

// guard is the per-call panic collector the pool primitives share: workers run
// under run(), the first panic is kept and the abort flag stops the siblings
// at their next scheduling point, and the caller re-raises it typed after the
// join. One guard serves one primitive invocation.
type guard struct {
	aborted atomic.Bool
	mu      sync.Mutex
	first   *PanicError
}

// run executes fn, converting a panic into a capture instead of letting it
// kill the process (a panic that unwinds past a goroutine's root is fatal no
// matter who recovers elsewhere).
func (g *guard) run(worker int, fn func()) {
	defer func() {
		if v := recover(); v != nil {
			g.capture(worker, v)
		}
	}()
	fn()
}

func (g *guard) capture(worker int, v any) {
	pe := AsPanicError(v, worker, "")
	g.mu.Lock()
	if g.first == nil {
		g.first = pe
	}
	g.mu.Unlock()
	g.aborted.Store(true)
}

// stop reports whether a sibling has panicked; scheduling loops poll it so an
// aborted call drains promptly instead of finishing the remaining work.
func (g *guard) stop() bool { return g.aborted.Load() }

// rethrow re-raises the first captured panic, typed, on the calling
// goroutine. Must run after the workers have joined (wg.Wait establishes the
// happens-before for first). No-op if nothing panicked.
func (g *guard) rethrow() {
	if g.first != nil {
		panic(g.first)
	}
}

// protect runs fn on the calling goroutine, converting a raw panic into the
// same typed *PanicError the pooled paths raise — the single-threaded
// fallbacks fail identically to parallel runs, so callers need one recovery
// path, not two.
func protect(worker int, fn func()) {
	defer func() {
		if v := recover(); v != nil {
			panic(AsPanicError(v, worker, ""))
		}
	}()
	fn()
}
