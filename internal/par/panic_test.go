package par

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// catchPanic runs fn and returns the *PanicError it re-raised, or nil.
func catchPanic(t *testing.T, fn func()) (pe *PanicError) {
	t.Helper()
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		var ok bool
		if pe, ok = v.(*PanicError); !ok {
			t.Fatalf("re-raised panic is %T (%v), want *PanicError", v, v)
		}
	}()
	fn()
	return nil
}

func TestForRangesPanicTyped(t *testing.T) {
	for _, threads := range []int{1, 4} {
		pe := catchPanic(t, func() {
			ForRanges(64, threads, func(worker, lo, hi int) {
				if lo <= 17 && 17 < hi {
					panic("boom at 17")
				}
			})
		})
		if pe == nil {
			t.Fatalf("threads=%d: worker panic was swallowed", threads)
		}
		if pe.Value != "boom at 17" {
			t.Errorf("threads=%d: Value = %v, want boom at 17", threads, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("threads=%d: no stack captured", threads)
		}
		if !strings.Contains(pe.Error(), "panicked") {
			t.Errorf("threads=%d: Error() = %q", threads, pe.Error())
		}
	}
}

func TestForEachDynamicPanicStopsSiblings(t *testing.T) {
	const n = 1 << 16
	var executed atomic.Int64
	pe := catchPanic(t, func() {
		ForEachDynamic(n, 4, func(worker, i int) {
			if i == 3 {
				panic("early")
			}
			executed.Add(1)
			if i < 64 {
				time.Sleep(time.Microsecond) // give the panic time to land
			}
		})
	})
	if pe == nil {
		t.Fatal("worker panic was swallowed")
	}
	// Siblings observe the stop flag at the next index claim, so the vast
	// majority of the n indices must never run.
	if got := executed.Load(); got > n/2 {
		t.Errorf("%d of %d indices ran after a panic; siblings did not stop", got, n)
	}
}

func TestParallelRunPanicTyped(t *testing.T) {
	for _, threads := range []int{1, 4} {
		pe := catchPanic(t, func() {
			ParallelRun(threads, func(worker int) {
				if worker == threads-1 {
					panic(errors.New("typed cause"))
				}
			})
		})
		if pe == nil {
			t.Fatalf("threads=%d: worker panic was swallowed", threads)
		}
		if pe.Worker != threads-1 {
			t.Errorf("threads=%d: Worker = %d, want %d", threads, pe.Worker, threads-1)
		}
		// A panic(error) keeps its errors.Is/As chain through Unwrap.
		if cause := errors.Unwrap(pe); cause == nil || cause.Error() != "typed cause" {
			t.Errorf("threads=%d: PanicError unwraps to %v, want typed cause", threads, cause)
		}
	}
}

// TestWorkStealPanicNoDeadlock is the regression test for the pending-count
// hang: a panicking task never decrements the scheduler's outstanding-task
// counter, so without the guard's stop flag the sibling workers would spin
// forever waiting for it to reach zero.
func TestWorkStealPanicNoDeadlock(t *testing.T) {
	for _, threads := range []int{1, 4} {
		done := make(chan *PanicError, 1)
		go func() {
			done <- catchPanic(t, func() {
				seeds := make([]int, 32)
				for i := range seeds {
					seeds[i] = i
				}
				WorkSteal(threads, seeds, func(worker, task int, spawn func(int)) {
					if task == 7 {
						panic("task 7")
					}
					if task >= 0 && task < 8 {
						spawn(-task - 1) // exercise spawned tasks too
					}
				})
			})
		}()
		select {
		case pe := <-done:
			if pe == nil {
				t.Fatalf("threads=%d: worker panic was swallowed", threads)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("threads=%d: WorkSteal deadlocked after a task panic", threads)
		}
	}
}

func TestPrefixSumParallelPanicTyped(t *testing.T) {
	counts := make([]int64, prefixSumParallelCutoff+1)
	out := make([]int64, len(counts)+1)
	// Force a panic inside the ForRanges pass via an out-of-bounds write.
	pe := catchPanic(t, func() {
		PrefixSumParallel(counts, out[:1], 4)
	})
	if pe == nil {
		t.Fatal("out-of-bounds write in a prefix-sum worker was swallowed")
	}
}

func TestAsPanicError(t *testing.T) {
	if got := AsPanicError(nil, 0, "x"); got != nil {
		t.Errorf("AsPanicError(nil) = %v, want nil", got)
	}
	orig := &PanicError{Worker: 3, Value: "v"}
	got := AsPanicError(orig, -1, "fill")
	if got != orig {
		t.Errorf("existing PanicError was rewrapped")
	}
	if got.Phase != "fill" {
		t.Errorf("empty Phase not filled: %q", got.Phase)
	}
}

// TestPanicNoGoroutineLeak asserts a panicked parallel call leaves no
// workers behind.
func TestPanicNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		catchPanic(t, func() {
			ForEachDynamic(1024, 8, func(worker, i int) {
				if i == 100 {
					panic("leak check")
				}
			})
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after repeated panicked calls", before, runtime.NumGoroutine())
}
