// Package par provides the parallel scheduling primitives used throughout the
// PB-SpGEMM reproduction. The paper parallelizes with OpenMP: the expand phase
// assigns contiguous, flop-balanced column ranges to threads (static
// scheduling), and the sort/compress phases hand out bins dynamically
// ("bins per thread", Table III). This package reproduces both patterns with
// goroutines and provides weight-balanced range partitioning.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultThreads returns the degree of parallelism to use when a caller
// passes a non-positive thread count. It honours GOMAXPROCS, the Go
// equivalent of OMP_NUM_THREADS.
func DefaultThreads(threads int) int {
	if threads > 0 {
		return threads
	}
	return runtime.GOMAXPROCS(0)
}

// ForRanges runs fn(t, lo, hi) on each of the threads half-open index ranges
// produced by splitting [0, n) into near-equal contiguous chunks, one chunk
// per worker. fn receives the worker id t in [0, threads). It blocks until
// all workers finish. This is the analogue of OpenMP "schedule(static)".
//
// A panic inside fn does not kill the process: it is recovered in the worker
// and re-raised on the calling goroutine as a *PanicError after the join.
// Static ranges have no scheduling points, so the sibling workers finish
// their chunks first; callers needing prompt sibling abort poll their own
// flag inside fn (internal/core does).
func ForRanges(n, threads int, fn func(worker, lo, hi int)) {
	threads = DefaultThreads(threads)
	if threads > n {
		threads = n
	}
	if n <= 0 {
		return
	}
	if threads <= 1 {
		protect(0, func() { fn(0, 0, n) })
		return
	}
	var g guard
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		go func(t, lo, hi int) {
			defer wg.Done()
			g.run(t, func() { fn(t, lo, hi) })
		}(t, lo, hi)
	}
	wg.Wait()
	g.rethrow()
}

// ForEachDynamic runs fn(worker, i) for every i in [0, n), handing indices to
// workers one at a time through an atomic counter. This is the analogue of
// OpenMP "schedule(dynamic,1)" and is how the sort and compress phases walk
// bins: cheap bins finish quickly and their workers immediately steal the
// next bin, which is what gives PB-SpGEMM its load balance on skewed inputs.
func ForEachDynamic(n, threads int, fn func(worker, i int)) {
	threads = DefaultThreads(threads)
	if threads > n {
		threads = n
	}
	if n <= 0 {
		return
	}
	if threads <= 1 {
		protect(0, func() {
			for i := 0; i < n; i++ {
				fn(0, i)
			}
		})
		return
	}
	var g guard
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(t int) {
			defer wg.Done()
			g.run(t, func() {
				for {
					// A sibling panicked: stop taking indices so the call
					// drains at scheduling granularity, not at n.
					if g.stop() {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fn(t, i)
				}
			})
		}(t)
	}
	wg.Wait()
	g.rethrow()
}

// ForChunksDynamic is ForEachDynamic with a chunk size: fn(worker, lo, hi)
// receives half-open ranges of width up to chunk. Use it when per-index work
// is tiny and the atomic counter would dominate.
func ForChunksDynamic(n, threads, chunk int, fn func(worker, lo, hi int)) {
	if chunk <= 0 {
		chunk = 1
	}
	nchunks := (n + chunk - 1) / chunk
	ForEachDynamic(nchunks, threads, func(worker, c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(worker, lo, hi)
	})
}

// BalancedBoundaries splits the index range [0, len(weights)) into parts
// contiguous ranges whose total weights are as equal as a greedy prefix scan
// can make them. It returns parts+1 boundaries b with b[0]=0 and
// b[parts]=len(weights); part p covers [b[p], b[p+1]). This is how the expand
// phase assigns columns of A to threads so that each thread performs roughly
// flop/threads multiplications (the paper's static schedule stays balanced
// because ER columns are uniform; for RMAT the weights make it balanced too).
func BalancedBoundaries(weights []int64, parts int) []int {
	if parts < 1 {
		parts = 1
	}
	return BalancedBoundariesInto(weights, parts, make([]int, parts+1))
}

// BalancedBoundariesInto is BalancedBoundaries writing into a caller-provided
// slice b of length parts+1 (allocation-free for pooled callers). It returns b.
func BalancedBoundariesInto(weights []int64, parts int, b []int) []int {
	n := len(weights)
	if parts < 1 {
		parts = 1
	}
	b[0] = 0
	b[parts] = n
	var total int64
	for _, w := range weights {
		total += w
	}
	if n == 0 || parts == 1 {
		for i := 1; i < parts; i++ {
			b[i] = 0
		}
		return b
	}
	target := total / int64(parts)
	var acc int64
	p := 1
	for i := 0; i < n && p < parts; i++ {
		acc += weights[i]
		// Close part p-1 once it reaches its proportional share.
		for p < parts && acc >= target*int64(p) {
			b[p] = i + 1
			p++
		}
	}
	for ; p < parts; p++ {
		b[p] = n
	}
	return b
}

// PrefixSum writes the exclusive prefix sum of counts into out (which must
// have len(counts)+1 entries) and returns the total. out[0]=0,
// out[i]=sum(counts[:i]).
func PrefixSum(counts []int64, out []int64) int64 {
	var acc int64
	out[0] = 0
	for i, c := range counts {
		acc += c
		out[i+1] = acc
	}
	return acc
}

// prefixSumParallelCutoff is the input size below which the two-pass parallel
// prefix sum loses to the sequential scan's single pass.
const prefixSumParallelCutoff = 1 << 15

// PrefixSumParallel is PrefixSum split over workers with the classic two-pass
// scheme: per-range totals first, then each range rescans with its exclusive
// offset. Integer addition is associative, so the result is identical to the
// sequential PrefixSum at any thread count; small inputs (or one thread) fall
// back to it outright. The fused assemble uses this to fix the output row
// pointers once the per-bin counts are exact. Both passes run on ForRanges,
// so worker panics surface as *PanicError like every other primitive here.
func PrefixSumParallel(counts, out []int64, threads int) int64 {
	n := len(counts)
	threads = DefaultThreads(threads)
	if threads <= 1 || n < prefixSumParallelCutoff {
		return PrefixSum(counts, out)
	}
	if threads > n {
		threads = n
	}
	sums := make([]int64, threads)
	ForRanges(n, threads, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		sums[w] = s
	})
	var total int64
	for w, s := range sums {
		sums[w] = total // exclusive offset of range w
		total += s
	}
	out[0] = 0
	ForRanges(n, threads, func(w, lo, hi int) {
		acc := sums[w]
		for i := lo; i < hi; i++ {
			acc += counts[i]
			out[i+1] = acc
		}
	})
	return total
}

// wsDeque is one worker's task deque: the owner pushes and pops at the tail
// (LIFO, cache-friendly for freshly spawned work), thieves take from the head
// (FIFO — the oldest, typically largest, task). A plain mutex suffices: tasks
// here are bin sorts, large enough that lock traffic is noise.
type wsDeque[T any] struct {
	mu  sync.Mutex
	buf []T
}

func (d *wsDeque[T]) push(t T) {
	d.mu.Lock()
	d.buf = append(d.buf, t)
	d.mu.Unlock()
}

func (d *wsDeque[T]) popTail() (t T, ok bool) {
	d.mu.Lock()
	if n := len(d.buf); n > 0 {
		t, ok = d.buf[n-1], true
		d.buf = d.buf[:n-1]
	}
	d.mu.Unlock()
	return t, ok
}

func (d *wsDeque[T]) stealHead() (t T, ok bool) {
	d.mu.Lock()
	if len(d.buf) > 0 {
		t, ok = d.buf[0], true
		d.buf = d.buf[1:]
	}
	d.mu.Unlock()
	return t, ok
}

// WorkSteal runs a dynamically growing task set over a fixed pool of workers
// with per-worker deques: fn may spawn follow-up tasks (a partitioned
// oversized bin hands out its buckets), which land on the spawning worker's
// own deque; idle workers steal from the others. Unlike ForEachDynamic's
// shared counter, splitting work mid-task needs no second scheduling pass —
// the sort phase uses this so one skewed bin's partition and bucket sorts
// spread across workers instead of serializing its tail. The call returns
// when every task, including every spawned one, has completed. fn must not
// retain spawn beyond its own invocation. Task execution order is
// unspecified; callers needing determinism must make tasks commutative
// (disjoint output ranges, as bins are).
func WorkSteal[T any](threads int, seeds []T, fn func(worker int, task T, spawn func(T))) {
	WorkStealPolicy(threads, seeds, nil, fn)
}

// ParallelRun invokes fn(worker) on exactly threads workers and waits.
// Workers coordinate through whatever state fn closes over. Worker panics
// are captured and re-raised typed on the caller, like ForRanges.
func ParallelRun(threads int, fn func(worker int)) {
	threads = DefaultThreads(threads)
	if threads <= 1 {
		protect(0, func() { fn(0) })
		return
	}
	var g guard
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(t int) {
			defer wg.Done()
			g.run(t, func() { fn(t) })
		}(t)
	}
	wg.Wait()
	g.rethrow()
}
