package pbspgemm

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestEngineConcurrentMixedLayoutLoad drives one shared Engine the way the
// serving layer does: many goroutines issuing products over different value
// types and tuple layouts at once — float64 arithmetic (12/16-byte tuples),
// boolean structure (4-byte pattern), float32 (8-byte narrow), min-plus
// generic, and masked products — while some requests are canceled mid-flight.
// Every completed product must match its single-threaded reference, every
// canceled one must fail with the ctx error, and no worker goroutine may
// outlive the run.
func TestEngineConcurrentMixedLayoutLoad(t *testing.T) {
	eng, err := NewEngine(WithBeta(50))
	if err != nil {
		t.Fatal(err)
	}
	a := NewER(512, 6, 21)
	b := NewER(512, 6, 22)
	mask := NewER(512, 4, 23)
	ref := Reference(a, b)
	refNNZ := ref.NNZ()

	boolA := MatrixOf(a, func(float64) bool { return true }).ToCSC()
	boolB := MatrixOf(b, func(float64) bool { return true })
	f32A := MatrixOf(a, func(v float64) float32 { return float32(v) }).ToCSC()
	f32B := MatrixOf(b, func(v float64) float32 { return float32(v) })
	mpA := Float64Matrix(a).ToCSC()
	mpB := Float64Matrix(b)

	// One workload per layout family; index selects which one a goroutine runs.
	workloads := []func(ctx context.Context) error{
		func(ctx context.Context) error { // wide/squeezed float64 tuples
			c, err := eng.Multiply(ctx, a, b)
			if err != nil {
				return err
			}
			if !EqualWithin(ref, c.C, 1e-9) {
				t.Error("arithmetic product differs from reference")
			}
			return nil
		},
		func(ctx context.Context) error { // 4-byte pattern tuples
			c, err := EngineMultiplyOver(eng, ctx, Boolean(), boolA, boolB)
			if err != nil {
				return err
			}
			if got := int64(len(c.ColIdx)); got != refNNZ {
				t.Errorf("boolean nnz = %d, want %d", got, refNNZ)
			}
			return nil
		},
		func(ctx context.Context) error { // 8-byte narrow tuples
			c, err := EngineMultiplyOver(eng, ctx, Arithmetic32(), f32A, f32B)
			if err != nil {
				return err
			}
			if got := int64(len(c.ColIdx)); got != refNNZ {
				t.Errorf("float32 nnz = %d, want %d", got, refNNZ)
			}
			return nil
		},
		func(ctx context.Context) error { // generic fallback path
			c, err := EngineMultiplyOver(eng, ctx, MinPlus(), mpA, mpB)
			if err != nil {
				return err
			}
			if got := int64(len(c.ColIdx)); got != refNNZ {
				t.Errorf("min-plus nnz = %d, want %d", got, refNNZ)
			}
			return nil
		},
		func(ctx context.Context) error { // masked product
			c, err := eng.MultiplyMasked(ctx, a, b, mask)
			if err != nil {
				return err
			}
			if c.NNZ() > refNNZ {
				t.Errorf("masked nnz %d exceeds unmasked %d", c.NNZ(), refNNZ)
			}
			return nil
		},
	}

	before := runtime.NumGoroutine()
	const goroutines = 20
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				work := workloads[(i+round)%len(workloads)]
				// Every third request gets a deadline that lands mid-flight
				// on most machines; either outcome is fine, but a failure
				// must be the ctx error, not corruption.
				if (i+round)%3 == 0 {
					ctx, cancel := context.WithTimeout(context.Background(), 300*time.Microsecond)
					if err := work(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("canceled request failed with %v", err)
					}
					cancel()
				} else if err := work(context.Background()); err != nil {
					t.Errorf("request failed: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()

	m := eng.Metrics()
	if m.Calls == 0 {
		t.Fatal("engine recorded no calls")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after mixed load",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
