module pbspgemm

go 1.21
