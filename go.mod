module pbspgemm

go 1.24
