package pbspgemm

// One testing.B benchmark per table/figure of the paper's evaluation, at
// laptop-scale defaults. Custom metrics mirror the paper's units: GFLOPS for
// performance figures and GB/s for bandwidth figures. cmd/experiments runs
// the full-scale sweeps with the same code paths.

import (
	"fmt"
	"testing"

	"pbspgemm/internal/core"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/numa"
	"pbspgemm/internal/roofline"
	"pbspgemm/internal/stream"
)

// benchMultiply runs one algorithm on fixed inputs, reporting GFLOPS.
func benchMultiply(b *testing.B, a, m *CSR, opt Options) {
	b.Helper()
	var flops int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Multiply(a, m, opt)
		if err != nil {
			b.Fatal(err)
		}
		flops = res.Flops
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(flops)/sec/1e9, "GFLOPS")
}

// --- Table V: STREAM --------------------------------------------------------

func BenchmarkTable5Stream(b *testing.B) {
	for _, k := range []stream.Kernel{stream.Copy, stream.Scale, stream.Add, stream.Triad} {
		b.Run(k.String(), func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				res := stream.Run(stream.Options{N: 1 << 21, Reps: 1})
				best = res[int(k)].BestGBs
			}
			b.ReportMetric(best, "GB/s")
		})
	}
}

// --- Fig. 3: Roofline model --------------------------------------------------

func BenchmarkFig3Roofline(b *testing.B) {
	cfs := []float64{1, 2, 3, 4, 6, 8, 16}
	for i := 0; i < b.N; i++ {
		pts := roofline.FigureThree(50, 16, cfs)
		if len(pts) != len(cfs) {
			b.Fatal("model failure")
		}
	}
}

// --- Fig. 6a: local bin width sweep -----------------------------------------

func BenchmarkFig6aLocalBinWidth(b *testing.B) {
	a := gen.ERMatrix(14, 4, 1).ToCSC()
	m := gen.ERMatrix(14, 4, 2)
	for _, width := range []int{64, 256, 512, 2048} {
		b.Run(fmt.Sprintf("bytes%d", width), func(b *testing.B) {
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = core.Multiply(a, m, core.Options{LocalBinBytes: width})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.ExpandGBs(), "expandGB/s")
		})
	}
}

// --- Fig. 6b: number of bins sweep ------------------------------------------

func BenchmarkFig6bNumBins(b *testing.B) {
	a := gen.ERMatrix(14, 4, 1).ToCSC()
	m := gen.ERMatrix(14, 4, 2)
	for _, nbins := range []int{1, 64, 1024, 4096} {
		b.Run(fmt.Sprintf("nbins%d", nbins), func(b *testing.B) {
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = core.Multiply(a, m, core.Options{NBins: nbins})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.SortGBs(), "sortGB/s")
			b.ReportMetric(st.ExpandGBs(), "expandGB/s")
		})
	}
}

// --- Fig. 7: ER performance (7a) and bandwidth (7b) -------------------------

func BenchmarkFig7ER(b *testing.B) {
	for _, ef := range []int{4, 8, 16} {
		a := gen.ERMatrix(13, ef, 1)
		m := gen.ERMatrix(13, ef, 2)
		for _, alg := range Algorithms() {
			b.Run(fmt.Sprintf("ef%d/%s", ef, alg), func(b *testing.B) {
				benchMultiply(b, a, m, Options{Algorithm: alg})
			})
		}
	}
}

func BenchmarkFig7bBandwidth(b *testing.B) {
	a := gen.ERMatrix(14, 8, 1).ToCSC()
	m := gen.ERMatrix(14, 8, 2)
	var st *core.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = core.Multiply(a, m, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.ExpandGBs(), "expandGB/s")
	b.ReportMetric(st.SortGBs(), "sortGB/s")
	b.ReportMetric(st.CompressGBs(), "compressGB/s")
}

// --- Fig. 8: ER on the POWER9 profile (model rescaling; see DESIGN.md §4) ---

func BenchmarkFig8Power9Model(b *testing.B) {
	a := gen.ERMatrix(13, 8, 1)
	m := gen.ERMatrix(13, 8, 2)
	res, err := Multiply(a, m, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		p := PredictGFLOPS(125, a.NNZ(), m.NNZ(), res.Flops, res.C.NNZ())
		if p <= 0 {
			b.Fatal("model failure")
		}
	}
	benchMultiply(b, a, m, Options{})
}

// --- Fig. 9: RMAT performance and bandwidth ----------------------------------

func BenchmarkFig9RMAT(b *testing.B) {
	for _, ef := range []int{4, 8, 16} {
		a := gen.RMAT(12, ef, gen.Graph500Params, 1)
		m := gen.RMAT(12, ef, gen.Graph500Params, 2)
		for _, alg := range Algorithms() {
			b.Run(fmt.Sprintf("ef%d/%s", ef, alg), func(b *testing.B) {
				benchMultiply(b, a, m, Options{Algorithm: alg})
			})
		}
	}
}

func BenchmarkFig9bBandwidth(b *testing.B) {
	a := gen.RMAT(13, 8, gen.Graph500Params, 1).ToCSC()
	m := gen.RMAT(13, 8, gen.Graph500Params, 2)
	var st *core.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = core.Multiply(a, m, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.ExpandGBs(), "expandGB/s")
	b.ReportMetric(st.SortGBs(), "sortGB/s")
}

// --- Fig. 10: RMAT on POWER9 profile -----------------------------------------

func BenchmarkFig10Power9Model(b *testing.B) {
	a := gen.RMAT(12, 8, gen.Graph500Params, 1)
	m := gen.RMAT(12, 8, gen.Graph500Params, 2)
	benchMultiply(b, a, m, Options{})
}

// --- Fig. 11: squaring real-matrix surrogates, ascending cf ------------------

func BenchmarkFig11Real(b *testing.B) {
	for _, name := range []string{"mc2depi", "web-Google", "2cubes_sphere", "cant"} {
		var s gen.Surrogate
		for _, c := range gen.Catalog() {
			if c.Name == name {
				s = c
			}
		}
		m := s.Generate(32, 42)
		for _, alg := range []Algorithm{PB, Hash} {
			b.Run(fmt.Sprintf("%s/%s", name, alg), func(b *testing.B) {
				benchMultiply(b, m, m, Options{Algorithm: alg})
			})
		}
	}
}

// --- Table VI: matrix statistics ---------------------------------------------

func BenchmarkTable6Stats(b *testing.B) {
	m := gen.Catalog()[0].Generate(32, 42)
	for i := 0; i < b.N; i++ {
		st := gen.MeasureStats(m)
		if st.CF < 1 {
			b.Fatal("bad stats")
		}
	}
}

// --- Fig. 12: strong scaling --------------------------------------------------

func BenchmarkFig12Scaling(b *testing.B) {
	er := gen.ERMatrix(12, 16, 1)
	rmat := gen.RMAT(12, 16, gen.Graph500Params, 1)
	for _, in := range []struct {
		name string
		m    *CSR
	}{{"ER", er}, {"RMAT", rmat}} {
		for _, threads := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/t%d", in.name, threads), func(b *testing.B) {
				benchMultiply(b, in.m, in.m, Options{Threads: threads})
			})
		}
	}
}

// --- Fig. 13: phase breakdown --------------------------------------------------

func BenchmarkFig13Phases(b *testing.B) {
	a := gen.ERMatrix(13, 16, 1).ToCSC()
	m := gen.ERMatrix(13, 16, 2)
	var st *core.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = core.Multiply(a, m, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.Expand.Seconds()*1e3, "expand-ms")
	b.ReportMetric(st.Sort.Seconds()*1e3, "sort-ms")
	b.ReportMetric(st.Compress.Seconds()*1e3, "compress-ms")
	b.ReportMetric(st.Symbolic.Seconds()*1e3, "symbolic-ms")
}

// --- Fig. 14 / Table VII: NUMA model ------------------------------------------

func BenchmarkFig14DualSocketModel(b *testing.B) {
	a := gen.ERMatrix(13, 16, 1)
	m := gen.ERMatrix(13, 16, 2)
	res, err := Multiply(a, m, Options{})
	if err != nil {
		b.Fatal(err)
	}
	st := res.PB
	topo := numa.PaperSkylake
	fr := numa.DefaultRemoteFractions()
	phases := []numa.PhaseTraffic{
		{Name: "expand", Bytes: st.ExpandBytes, SingleTime: st.Expand, RemoteFrac: fr["expand"]},
		{Name: "sort", Bytes: st.SortBytes, SingleTime: st.Sort, RemoteFrac: fr["sort"]},
		{Name: "compress", Bytes: st.CompressBytes, SingleTime: st.Compress, RemoteFrac: fr["compress"]},
	}
	for i := 0; i < b.N; i++ {
		if topo.PredictDual(phases) <= 0 {
			b.Fatal("model failure")
		}
	}
}

func BenchmarkTable7Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ns := numa.MeasureLatencyNs(4<<20, 1)
		b.ReportMetric(ns, "ns/access")
	}
}

// --- Ablations: the design choices DESIGN.md calls out ------------------------

// BenchmarkAblationNoBlocking compares PB with its propagation blocking
// disabled (a single global bin = plain outer-product ESC) against the tuned
// default — the core design choice of the paper.
func BenchmarkAblationNoBlocking(b *testing.B) {
	a := gen.ERMatrix(14, 8, 1).ToCSC()
	m := gen.ERMatrix(14, 8, 2)
	for _, tc := range []struct {
		name  string
		nbins int
	}{{"blocked_auto", 0}, {"single_bin", 1}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Multiply(a, m, core.Options{NBins: tc.nbins}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNoLocalBins compares the default 512-byte local bins with
// one-tuple local bins (every tuple goes straight to its global bin through
// an atomic reservation — the cache-line-wasting behaviour Fig. 5 fixes).
func BenchmarkAblationNoLocalBins(b *testing.B) {
	a := gen.ERMatrix(14, 8, 1).ToCSC()
	m := gen.ERMatrix(14, 8, 2)
	for _, tc := range []struct {
		name  string
		bytes int
	}{{"local512B", 512}, {"local1tuple", 16}} {
		b.Run(tc.name, func(b *testing.B) {
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = core.Multiply(a, m, core.Options{LocalBinBytes: tc.bytes})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.ExpandGBs(), "expandGB/s")
		})
	}
}

// BenchmarkAblationPartitioned measures the Section V-D partitioned variant:
// the extra (parts-1)·nnz(B) reads it trades for NUMA locality.
func BenchmarkAblationPartitioned(b *testing.B) {
	a := gen.ERMatrix(13, 8, 1)
	m := gen.ERMatrix(13, 8, 2)
	for _, parts := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parts%d", parts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MultiplyPartitioned(a, m, parts, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSPA adds the SPA accumulator to the baseline lineup (the
// paper's Table I cites it but does not benchmark it).
func BenchmarkAblationSPA(b *testing.B) {
	a := gen.ERMatrix(13, 8, 1)
	m := gen.ERMatrix(13, 8, 2)
	benchMultiply(b, a, m, Options{Algorithm: SPA})
}

// --- Execution engine: workspace reuse and memory budget ----------------------

// BenchmarkWorkspaceSteadyState measures repeated multiplication through one
// shared Workspace — the serving scenario where the allocator and GC must
// stay off the hot path. With Threads=1 the engine performs zero
// steady-state allocations (the t1 rows report 0 allocs/op); parallel rows
// add only goroutine-spawn allocations.
func BenchmarkWorkspaceSteadyState(b *testing.B) {
	a := gen.ERMatrix(13, 8, 1).ToCSC()
	m := gen.ERMatrix(13, 8, 2)
	for _, tc := range []struct {
		name    string
		threads int
		budget  int64
	}{
		{"t1", 1, 0},
		{"t1/budgeted", 1, 1 << 20},
		{"all-cores", 0, 0},
		{"all-cores/budgeted", 0, 1 << 20},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ws := core.NewWorkspace()
			opt := core.Options{Threads: tc.threads, Workspace: ws, MemoryBudgetBytes: tc.budget}
			// Warm-up call grows every pooled buffer to its high-water mark.
			if _, _, err := core.Multiply(a, m, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = core.Multiply(a, m, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(st.Flops)/sec/1e9, "GFLOPS")
		})
	}
}

// BenchmarkWorkspacePublicAPI contrasts the public Multiply with and without
// a shared workspace (the no-workspace rows pay the tuple buffer, plan
// arrays and A's CSC conversion every call).
func BenchmarkWorkspacePublicAPI(b *testing.B) {
	a := gen.ERMatrix(13, 8, 1)
	m := gen.ERMatrix(13, 8, 2)
	for _, tc := range []struct {
		name string
		ws   *Workspace
	}{{"fresh-buffers", nil}, {"workspace", NewWorkspace()}} {
		b.Run(tc.name, func(b *testing.B) {
			opt := Options{Workspace: tc.ws}
			if _, err := Multiply(a, m, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Multiply(a, m, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMemoryBudget sweeps MemoryBudgetBytes from unlimited down to 1/32
// of the expansion, measuring what the panel merge costs relative to the
// single-shot algorithm it makes feasible on out-of-budget inputs.
func BenchmarkMemoryBudget(b *testing.B) {
	a := gen.ERMatrix(13, 8, 1).ToCSC()
	m := gen.ERMatrix(13, 8, 2)
	_, st0, err := core.Multiply(a, m, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	full := st0.Flops * 16
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"unlimited", 0},
		{"half", full / 2},
		{"eighth", full / 8},
		{"thirtysecond", full / 32},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ws := core.NewWorkspace()
			opt := core.Options{Workspace: ws, MemoryBudgetBytes: tc.budget}
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = core.Multiply(a, m, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.NPanels), "panels")
			b.ReportMetric(float64(ws.TupleCapBytes())/(1<<20), "tupleMiB")
		})
	}
}
