package pbspgemm

import (
	"bytes"
	"testing"
)

func TestPublicMultiplyAllAlgorithms(t *testing.T) {
	a := NewER(256, 6, 1)
	b := NewER(256, 6, 2)
	want := Reference(a, b)
	for _, alg := range []Algorithm{PB, Heap, Hash, HashVec, SPA, OuterHeapNaive, ColumnESC} {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Multiply(a, b, Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if !EqualWithin(want, res.C, 1e-9) {
				t.Fatal("result differs from reference")
			}
			if res.Flops != Flops(a, b) {
				t.Errorf("flops %d, want %d", res.Flops, Flops(a, b))
			}
			if res.CF < 1 {
				t.Errorf("cf %v < 1", res.CF)
			}
			if res.GFLOPS() <= 0 {
				t.Error("non-positive GFLOPS")
			}
			if alg == PB && res.PB == nil {
				t.Error("PB run missing phase stats")
			}
			if alg != PB && res.Baseline == nil {
				t.Error("baseline run missing stats")
			}
		})
	}
}

// TestPublicWorkspaceAndBudget exercises the execution-engine options
// through the public API: repeated multiplications through one workspace,
// with and without a memory budget, stay correct and report tiling.
func TestPublicWorkspaceAndBudget(t *testing.T) {
	a := NewER(512, 6, 3)
	b := NewER(512, 6, 4)
	want := Reference(a, b)
	ws := NewWorkspace()
	for i := 0; i < 3; i++ {
		res, err := Multiply(a, b, Options{Workspace: ws})
		if err != nil {
			t.Fatal(err)
		}
		if !EqualWithin(want, res.C, 1e-9) {
			t.Fatalf("iteration %d: workspace result differs from reference", i)
		}
		if res.PB.NPanels != 1 {
			t.Fatalf("unbudgeted run tiled into %d panels", res.PB.NPanels)
		}
	}
	res, err := Multiply(a, b, Options{Workspace: ws, MemoryBudgetBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(want, res.C, 1e-9) {
		t.Fatal("budgeted result differs from reference")
	}
	if res.PB.NPanels < 2 {
		t.Fatalf("expected tiling under 32 KiB budget, got %d panels", res.PB.NPanels)
	}
	// The same workspace also serves the partitioned variant.
	resP, err := MultiplyPartitioned(a, b, 2, Options{Workspace: ws, MemoryBudgetBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(want, resP.C, 1e-9) {
		t.Fatal("partitioned budgeted result differs from reference")
	}
}

func TestPublicSquare(t *testing.T) {
	a := NewRMAT(8, 4, 3)
	res, err := Square(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(Reference(a, a), res.C, 1e-9) {
		t.Fatal("square differs from reference")
	}
}

func TestPublicShapeError(t *testing.T) {
	a := NewER(16, 2, 1)
	b := NewER(32, 2, 2)
	if _, err := Multiply(a, b, Options{}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestPublicUnknownAlgorithm(t *testing.T) {
	a := NewER(16, 2, 1)
	if _, err := Multiply(a, a, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("expected unknown-algorithm error")
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm must still print")
	}
}

func TestPublicMatrixMarketRoundTrip(t *testing.T) {
	a := NewER(64, 3, 9)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(a, back, 0) {
		t.Fatal("round trip changed matrix")
	}
}

func TestPredictGFLOPS(t *testing.T) {
	// ER-like profile: nnzA=nnzB=nnzC=n*d, flop=cf*nnzC with cf=1 gives the
	// paper's 1/80 AI: at 40 GB/s the prediction is 0.5 GFLOPS.
	var nnz int64 = 1 << 20
	got := PredictGFLOPS(40, nnz, nnz, nnz, nnz)
	// Exact model: flop/(nnzA+nnzB+2flop+nnzC)/16*40 = 40/(5*16) = 0.5.
	if got < 0.49 || got > 0.51 {
		t.Fatalf("prediction = %v, want ~0.5", got)
	}
}

func TestAlgorithmsList(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 4 || algs[0] != PB {
		t.Fatalf("Algorithms() = %v", algs)
	}
}

func TestMeasureBandwidthSmall(t *testing.T) {
	if beta := MeasureBandwidth(1<<16, 2); beta <= 0 {
		t.Fatal("bandwidth must be positive")
	}
}
