// Package pbspgemm is a bandwidth-optimized parallel sparse matrix-matrix
// multiplication (SpGEMM) library, reproducing "Bandwidth-Optimized Parallel
// Algorithms for Sparse Matrix-Matrix Multiplication using Propagation
// Blocking" (Gu, Moreira, Edelsohn, Azad — SPAA 2020).
//
// The headline algorithm, PB-SpGEMM, multiplies sparse matrices by outer
// products in an expand-sort-compress pipeline whose phases all stream
// memory at near-STREAM bandwidth, using propagation blocking to keep
// sorting and merging inside the cache. The package also provides the
// state-of-the-art column SpGEMM baselines the paper compares against
// (heap, hash, vectorized hash, and SPA accumulators), matrix generators
// (Erdős–Rényi, R-MAT), Matrix Market I/O, a STREAM bandwidth benchmark and
// the paper's Roofline performance model.
//
// Quick start:
//
//	a := pbspgemm.NewER(1<<16, 8, 1)       // 65536x65536, 8 nnz/column
//	b := pbspgemm.NewER(1<<16, 8, 2)
//	eng, _ := pbspgemm.NewEngine()         // concurrency-safe, pooled, metered
//	res, err := eng.Multiply(context.Background(), a, b)
//	fmt.Println(res.GFLOPS(), res.C.NNZ())
//
// Beyond float64 arithmetic, the package is generic over semirings
// (Semiring[T], MultiplyOver) with GraphBLAS-style masked products
// (MultiplyMasked, WithMask/WithComplementMask) and element-wise operations
// (EWiseAdd, EWiseMult); see the graph subpackage for BFS over Boolean(),
// masked triangle counting and min-plus shortest-path relaxation built on
// that surface.
package pbspgemm

import (
	"fmt"
	"io"
	"time"

	"pbspgemm/internal/baseline"
	"pbspgemm/internal/core"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/mmio"
	"pbspgemm/internal/roofline"
	"pbspgemm/internal/stream"
)

// Matrix formats, re-exported from the storage layer. CSR is the library's
// canonical interchange format; PB-SpGEMM internally consumes A as CSC.
type (
	// CSR is a compressed sparse row matrix (4-byte indices, 8-byte values).
	CSR = matrix.CSR
	// CSC is a compressed sparse column matrix.
	CSC = matrix.CSC
	// COO is a coordinate-format matrix (the expanded C-hat format).
	COO = matrix.COO
)

// Algorithm selects the SpGEMM implementation.
type Algorithm int

// Available algorithms. PB is the paper's contribution; the others are the
// column SpGEMM baselines of its evaluation (Section IV-A).
const (
	// PB is PB-SpGEMM: outer-product expand-sort-compress with propagation
	// blocking. Fastest when the compression factor is below ~4.
	PB Algorithm = iota
	// Heap is HeapSpGEMM: column merging with a binary heap, O(flop log d).
	Heap
	// Hash is HashSpGEMM: column merging with open-addressing hash tables.
	Hash
	// HashVec is HashVecSpGEMM: hash merging with batched (vector-style)
	// probing.
	HashVec
	// SPA is the classic Gilbert-Moler-Schreiber dense accumulator.
	SPA
	// OuterHeapNaive is the n-merge outer-product algorithm the paper
	// dismisses (Section II-B); present for ablations, quadratic-ish: only
	// use on small inputs.
	OuterHeapNaive
	// ColumnESC is the column-wise (row-wise on CSR) expand-sort-compress
	// algorithm of Dalton et al. [15] — the Table I cell adjacent to
	// PB-SpGEMM: same ESC output formation, but without outer-product input
	// streaming or propagation blocking.
	ColumnESC
	// Auto lets the Engine pick the kernel per call with the paper's
	// roofline model (Section II): the planner runs the cheap symbolic flop
	// pass, estimates the compression factor, and chooses the
	// predicted-fastest family — PB in bandwidth-bound low-cf regimes, a
	// hash column kernel past the cf ≈ 4 crossover. Engine-only (the
	// deprecated Multiply shim rejects it); the decision and its model
	// inputs are reported on Result.Plan.
	Auto
)

// String returns the algorithm name as used in the paper.
func (a Algorithm) String() string {
	switch a {
	case PB:
		return "PB-SpGEMM"
	case Heap:
		return "HeapSpGEMM"
	case Hash:
		return "HashSpGEMM"
	case HashVec:
		return "HashVecSpGEMM"
	case SPA:
		return "SPASpGEMM"
	case OuterHeapNaive:
		return "OuterHeapNaive"
	case ColumnESC:
		return "ColumnESC"
	case Auto:
		return "Auto"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Algorithms returns the four algorithms of the paper's evaluation, in the
// order its figures plot them.
func Algorithms() []Algorithm { return []Algorithm{PB, Heap, Hash, HashVec} }

// Options configures the deprecated Multiply entry point. The zero value
// runs PB-SpGEMM with the paper's defaults on all cores.
//
// Deprecated: new code should use an Engine with functional options
// (WithAlgorithm, WithThreads, WithMemoryBudget, WithMask, ...), which adds
// concurrency safety, context cancellation and metrics. Options remains so
// existing callers keep compiling; each field maps to the like-named With*
// option.
type Options struct {
	// Algorithm selects the implementation (default PB).
	Algorithm Algorithm
	// Threads caps worker goroutines; 0 uses GOMAXPROCS.
	Threads int
	// NBins overrides the global bin count (PB only); 0 = auto from flop
	// and L2CacheBytes (Algorithm 3).
	NBins int
	// LocalBinBytes is the thread-private local bin width in bytes (PB
	// only); 0 = 512, the paper's tuned value (Fig. 6a).
	LocalBinBytes int
	// L2CacheBytes is the per-bin cache budget used to auto-size NBins (PB
	// only); 0 = 1 MiB.
	L2CacheBytes int
	// MemoryBudgetBytes caps PB-SpGEMM's expanded-tuple working set — the
	// flop×16-byte buffer that dominates its footprint. When positive and
	// smaller than that, A's columns are tiled into panels whose expansions
	// each fit the budget and per-panel results are merged, enabling
	// products whose expansion exceeds RAM. 0 = unlimited (single shot).
	// PB only; the budget is best-effort with a one-column-panel floor.
	MemoryBudgetBytes int64
	// Workspace, if non-nil, reuses buffers across calls (PB only):
	// steady-state multiplications perform zero large allocations, and with
	// Threads == 1 zero allocations at all inside the core engine. The
	// returned Result.C then aliases workspace memory and is invalidated by
	// the next Multiply using the same workspace — Clone it to keep it.
	Workspace *Workspace
	// DisableFusion runs PB with the paper's separate sort → compress →
	// assemble phases instead of the default fused pipeline (PB only; see
	// the README's "fused pipeline" section). Output is bit-identical; the
	// switch exists for ablations and for reproducing the paper's
	// per-phase sort/compress measurements, which a fused run reports
	// under the single Fuse phase instead.
	DisableFusion bool
}

// Workspace pools PB-SpGEMM's buffers (tuple arena, local bins, plan and
// merge arrays, output storage, A's CSC conversion) across Multiply calls.
// Create one with NewWorkspace, pass it via Options.Workspace, and do not
// share it between concurrent calls.
type Workspace = core.Workspace

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return core.NewWorkspace() }

// PhaseStats is the per-phase timing/traffic breakdown of a PB-SpGEMM run.
// Its Layout and TupleBytes fields report the expanded-tuple layout the run
// used (see TupleLayout).
type PhaseStats = core.Stats

// TupleLayout identifies the expanded-tuple representation of a PB-SpGEMM
// run (PhaseStats.Layout): the paper's 16-byte wide COO tuples, or the
// Section III-D squeezed 12-byte layout (uint32 key + float64 value in
// parallel arrays) the engine selects whenever localRowBits + colBits ≤ 32
// — which, because bins keep local row ids small, is almost every real
// matrix. Plan.OuterTupleBytes reports which cost the Auto planner assumed.
type TupleLayout = core.Layout

const (
	// LayoutWide is the 16-byte key+value tuple layout.
	LayoutWide = core.LayoutWide
	// LayoutSqueezed is the 12-byte u32-key parallel-array layout.
	LayoutSqueezed = core.LayoutSqueezed
	// LayoutNarrow is the 8-byte u32-key + 32-bit-value layout of the typed
	// float32/int32 fast path (Arithmetic32/ArithmeticInt32 semirings).
	LayoutNarrow = core.LayoutNarrow
	// LayoutPattern is the 4-byte key-only layout of structural products
	// (the Boolean semiring's fast path).
	LayoutPattern = core.LayoutPattern
)

// BaselineStats is the two-phase breakdown of a column SpGEMM run.
type BaselineStats = baseline.Stats

// Result is the outcome of one multiplication.
type Result struct {
	// C is the product in canonical CSR (sorted, deduplicated rows).
	C *CSR
	// Algorithm that produced C.
	Algorithm Algorithm
	// Flops is the number of scalar multiplications performed.
	Flops int64
	// CF is the compression factor flop/nnz(C).
	CF float64
	// Elapsed is the end-to-end multiplication time.
	Elapsed time.Duration
	// PB holds the phase breakdown when Algorithm == PB, else nil.
	PB *PhaseStats
	// Baseline holds the phase breakdown for column algorithms, else nil.
	Baseline *BaselineStats
	// Plan holds the roofline planner's decision and model inputs when the
	// call ran with WithAlgorithm(Auto), else nil; Algorithm then reports
	// the kernel the planner chose.
	Plan *Plan
}

// GFLOPS returns the paper's performance metric for this run.
func (r *Result) GFLOPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Flops) / r.Elapsed.Seconds() / 1e9
}

// shapeError is the inner-dimension mismatch error every multiplication
// entry point returns; it wraps matrix.ErrShape for errors.Is.
func shapeError(a, b *CSR) error {
	return fmt.Errorf("pbspgemm: inner dimensions disagree (%dx%d)·(%dx%d): %w",
		a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
}

// Multiply computes C = A*B with the selected algorithm. Inputs must be
// canonical CSR (as produced by this package's generators, converters and
// readers); A is converted to CSC internally when PB or OuterHeapNaive runs
// (the conversion is excluded from Elapsed, matching how the paper passes A
// pre-converted).
//
// Deprecated: Multiply is the legacy single-threaded-workspace entry point,
// kept as a thin shim over the same kernels. New code should create an
// Engine and call Engine.Multiply(ctx, a, b, opts...), which is safe for
// concurrent use, cancellable and metered; semiring workloads should use
// MultiplyOver / MultiplyMasked.
func Multiply(a, b *CSR, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if a.NumCols != b.NumRows {
		return nil, shapeError(a, b)
	}
	res := &Result{Algorithm: opt.Algorithm}
	switch opt.Algorithm {
	case PB:
		var acsc *CSC
		if opt.Workspace != nil {
			acsc = opt.Workspace.CSCOf(a)
		} else {
			acsc = a.ToCSC()
		}
		c, st, err := core.Multiply(acsc, b, core.Options{
			NBins:             opt.NBins,
			LocalBinBytes:     opt.LocalBinBytes,
			Threads:           opt.Threads,
			L2CacheBytes:      opt.L2CacheBytes,
			MemoryBudgetBytes: opt.MemoryBudgetBytes,
			Workspace:         opt.Workspace,
			DisableFusion:     opt.DisableFusion,
		})
		if err != nil {
			return nil, err
		}
		res.C, res.PB = c, st
		res.Flops, res.CF, res.Elapsed = st.Flops, st.CF, st.Total
	case Heap, Hash, HashVec, SPA, ColumnESC:
		var fn func(a, b *matrix.CSR, o baseline.Options) (*matrix.CSR, *baseline.Stats, error)
		switch opt.Algorithm {
		case Heap:
			fn = baseline.Heap
		case Hash:
			fn = baseline.Hash
		case HashVec:
			fn = baseline.HashVec
		case ColumnESC:
			fn = baseline.ColumnESC
		default:
			fn = baseline.SPA
		}
		c, st, err := fn(a, b, baseline.Options{Threads: opt.Threads})
		if err != nil {
			return nil, err
		}
		res.C, res.Baseline = c, st
		res.Flops, res.CF, res.Elapsed = st.Flops, st.CF, st.Total
	case OuterHeapNaive:
		acsc := a.ToCSC()
		c, st, err := baseline.OuterHeap(acsc, b)
		if err != nil {
			return nil, err
		}
		res.C, res.Baseline = c, st
		res.Flops, res.CF, res.Elapsed = st.Flops, st.CF, st.Total
	case Auto:
		return nil, fmt.Errorf("pbspgemm: Auto algorithm selection requires an Engine (use Engine.Multiply)")
	default:
		return nil, fmt.Errorf("pbspgemm: unknown algorithm %v", opt.Algorithm)
	}
	return res, nil
}

// Square computes A*A, the paper's real-matrix workload (Fig. 11).
func Square(a *CSR, opt Options) (*Result, error) { return Multiply(a, a, opt) }

// MultiplyPartitioned computes C = A*B with partitioned PB-SpGEMM: A is split
// into `parts` flop-balanced row bands multiplied independently. This is the
// NUMA mitigation of Section V-D (each band's bins stay socket-local at the
// cost of re-reading B per band); parts <= 1 is plain PB-SpGEMM.
func MultiplyPartitioned(a, b *CSR, parts int, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if a.NumCols != b.NumRows {
		return nil, shapeError(a, b)
	}
	var acsc *CSC
	if opt.Workspace != nil {
		acsc = opt.Workspace.CSCOf(a)
	} else {
		acsc = a.ToCSC()
	}
	c, st, err := core.MultiplyPartitioned(acsc, b, parts, core.Options{
		NBins:             opt.NBins,
		LocalBinBytes:     opt.LocalBinBytes,
		Threads:           opt.Threads,
		L2CacheBytes:      opt.L2CacheBytes,
		MemoryBudgetBytes: opt.MemoryBudgetBytes,
		Workspace:         opt.Workspace,
		DisableFusion:     opt.DisableFusion,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		C: c, Algorithm: PB, Flops: st.Flops, CF: st.CF, Elapsed: st.Total, PB: st,
	}, nil
}

// NewER generates an n×n Erdős–Rényi matrix with exactly d nonzeros per
// column (deterministic in seed).
func NewER(n int32, d int, seed uint64) *CSR { return gen.ER(n, d, seed) }

// NewRMAT generates a 2^scale square R-MAT matrix with the Graph500
// parameters (a=0.57, b=c=0.19, d=0.05) and edgeFactor nonzeros per column
// before duplicate merging — the paper's skewed "RMAT" workload.
func NewRMAT(scale, edgeFactor int, seed uint64) *CSR {
	return gen.RMAT(scale, edgeFactor, gen.Graph500Params, seed)
}

// ReadMatrixMarket parses a Matrix Market stream (SuiteSparse format).
func ReadMatrixMarket(r io.Reader) (*CSR, error) { return mmio.ReadMatrixMarket(r) }

// ReadMatrixMarketLimited is ReadMatrixMarket with a hard byte cap for
// untrusted input: consuming more than maxBytes from r fails with an error
// matching mmio's ErrTooLarge instead of ingesting a hostile payload.
// maxBytes <= 0 means unlimited.
func ReadMatrixMarketLimited(r io.Reader, maxBytes int64) (*CSR, error) {
	return mmio.ReadMatrixMarketLimited(r, maxBytes)
}

// ReadMatrixMarketFile loads a Matrix Market file from disk.
func ReadMatrixMarketFile(path string) (*CSR, error) { return mmio.ReadFile(path) }

// WriteMatrixMarket writes m as a general real coordinate Matrix Market file.
func WriteMatrixMarket(w io.Writer, m *CSR) error { return mmio.WriteMatrixMarket(w, m) }

// Flops returns the multiplication count of A*B without computing the
// product (the paper's symbolic quantity).
func Flops(a, b *CSR) int64 { return matrix.FlopsCSR(a, b) }

// MeasureBandwidth runs the STREAM benchmark and returns beta in GB/s (best
// Triad), the bandwidth term of the Roofline model. n is elements per array
// (0 = 32Mi ≈ 256 MiB/array); pass threads=0 for all cores.
func MeasureBandwidth(n, threads int) float64 {
	return stream.Beta(stream.Run(stream.Options{N: n, Threads: threads}))
}

// PredictGFLOPS returns the Roofline prediction beta·AI for PB-SpGEMM on a
// multiplication with the given traffic profile (Eq. 4's exact form).
func PredictGFLOPS(betaGBs float64, nnzA, nnzB, flop, nnzC int64) float64 {
	ai := roofline.AIOuterExact(nnzA, nnzB, flop, nnzC, roofline.DefaultBytesPerNonzero)
	return roofline.Attainable(betaGBs, ai)
}

// Reference computes A*B with the slow, obviously-correct map accumulator —
// intended for validating other algorithms in tests and examples.
func Reference(a, b *CSR) *CSR { return matrix.ReferenceMultiply(a, b) }

// EqualWithin reports whether two canonical CSR matrices agree structurally
// with values within tol (SpGEMM algorithms sum in different orders).
func EqualWithin(a, b *CSR, tol float64) bool { return matrix.Equal(a, b, tol) }
