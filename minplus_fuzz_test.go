package pbspgemm

import (
	"testing"

	"pbspgemm/internal/matrix"
)

// FuzzMultiplyOverMinPlus checks the tropical-semiring product against a
// scalar reference relaxation: for every vertex pair, the (min,+) SpGEMM
// entry must equal min over k of d(i,k)+d(k,j), and be absent exactly when
// no 2-hop path exists. It also pins the budgeted (multi-panel) path to the
// single-shot result.
func FuzzMultiplyOverMinPlus(f *testing.F) {
	f.Add(uint8(5), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(2), []byte{})
	f.Add(uint8(17), []byte{0, 0, 1, 0, 1, 2, 1, 0, 3, 255, 254, 253, 9, 9, 9})
	f.Add(uint8(23), []byte{8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, nSel uint8, data []byte) {
		n := int32(nSel%24) + 2
		coo := &matrix.COO{NumRows: n, NumCols: n}
		for i := 0; i+2 < len(data); i += 3 {
			coo.Row = append(coo.Row, int32(data[i])%n)
			coo.Col = append(coo.Col, int32(data[i+1])%n)
			coo.Val = append(coo.Val, 1+float64(data[i+2])/16)
		}
		d := coo.ToCSR() // duplicates summed; still a weighted digraph
		sr := MinPlus()
		gd := Float64Matrix(d)

		got, err := MultiplyOver(sr, gd.ToCSC(), gd)
		if err != nil {
			t.Fatal(err)
		}
		budgeted, err := MultiplyOver(sr, gd.ToCSC(), gd, WithMemoryBudget(256))
		if err != nil {
			t.Fatal(err)
		}

		// Scalar reference: dense min-plus relaxation over stored entries.
		const unset = 1e308
		want := make([][]float64, n)
		for i := range want {
			want[i] = make([]float64, n)
			for j := range want[i] {
				want[i][j] = unset
			}
		}
		dist := make([][]float64, n)
		for i := range dist {
			dist[i] = make([]float64, n)
			for j := range dist[i] {
				dist[i][j] = unset
			}
		}
		for i := int32(0); i < n; i++ {
			for p := d.RowPtr[i]; p < d.RowPtr[i+1]; p++ {
				dist[i][d.ColIdx[p]] = d.Val[p]
			}
		}
		for i := int32(0); i < n; i++ {
			for k := int32(0); k < n; k++ {
				if dist[i][k] == unset {
					continue
				}
				for j := int32(0); j < n; j++ {
					if dist[k][j] == unset {
						continue
					}
					if rel := dist[i][k] + dist[k][j]; rel < want[i][j] {
						want[i][j] = rel
					}
				}
			}
		}

		for _, c := range []*Matrix[float64]{got, budgeted} {
			var stored int
			for i := int32(0); i < n; i++ {
				for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
					j := c.ColIdx[p]
					if want[i][j] == unset {
						t.Fatalf("(%d,%d): stored %v, but no 2-hop path exists", i, j, c.Val[p])
					}
					if diff := c.Val[p] - want[i][j]; diff > 1e-9 || diff < -1e-9 {
						t.Fatalf("(%d,%d) = %v, want %v", i, j, c.Val[p], want[i][j])
					}
					stored++
				}
			}
			var finite int
			for i := range want {
				for j := range want[i] {
					if want[i][j] != unset {
						finite++
					}
				}
			}
			if stored != finite {
				t.Fatalf("product stores %d entries, reference has %d finite distances", stored, finite)
			}
		}
	})
}
